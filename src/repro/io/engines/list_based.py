"""The list-based I/O engine — a faithful re-implementation of the
conventional (ROMIO) approach the paper's §2 analyzes.

Every cost the paper attributes to ol-lists is really paid here:

* the filetype is explicitly flattened at ``set_view`` (O(Nblock) time and
  16 bytes/tuple of memory, cached per datatype as ROMIO caches it);
* a fresh ol-list is built for the memtype on *every* access and dropped
  afterwards (paper §2.1, last paragraph);
* positioning the file pointer walks the list linearly — O(Nblock/2) list
  elements per navigation on average (§2.2);
* data sieving copies one ``(offset, length)`` tuple at a time in an
  interpreted loop, reading the tuple before each copy (§2.1 "Copy time");
* collective access expands each AP's view over every IOP's file domain
  into per-pair ol-lists that are *sent along with the data* (16 bytes per
  tuple of wire volume, §2.3), and the collective-write contiguity
  optimization merges all received lists per window (§2.3, last
  paragraph).

Accesses are planned like the listless engine's, but the plans preserve
the conventional cost profile: the engine offers no plan geometry, so
independent plans carry *deferred* pieces that the executor streams
through :meth:`_view_blocks` (the linear tuple walk) at execution time;
collective plans carry :class:`~repro.plan.ops.TupleBlocks` copied one
tuple at a time; and no plan is ever cached — the conventional scheme
re-derives its lists on every access, which is precisely the overhead
the paper measures.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.flatten.flattener import flatten_cached, flatten_datatype
from repro.flatten.list_ops import expand_range, merge_lists
from repro.flatten.ol_list import OLList
from repro.io.engines.base import IOEngine
from repro.io.fileview import MemDescriptor
from repro.io.sieving import windows
from repro.io.two_phase import AccessRange
from repro.obs import trace
from repro.plan.ops import (
    STAGE,
    ExchangeOp,
    FileReadOp,
    FileWriteOp,
    GatherOp,
    Piece,
    ScatterOp,
    Send,
    TupleBlocks,
    in_slot,
    out_slot,
)
from repro.plan.plan import IOPlan

__all__ = ["ListBasedEngine"]


class ListBasedEngine(IOEngine):
    """Conventional ol-list I/O engine."""

    name = "list_based"
    cacheable_plans = False  # lists are re-expanded on every access

    def __init__(self, fh) -> None:
        super().__init__(fh)
        self.flat: Optional[OLList] = None

    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Explicitly flatten the filetype (no exchange happens here —
        the conventional implementation ships lists per access)."""
        with trace.span("list_based.setup_view"):
            cold = (
                getattr(self.fh.view.filetype, "_ollist_cache", None)
                is None
            )
            self.flat = flatten_cached(self.fh.view.filetype)
            if cold:
                self.stats.list_tuples_built += len(self.flat)
            self.planner.invalidate()
            # Collective call contract: everyone still synchronizes.
            self.fh.comm.barrier()

    # ------------------------------------------------------------------
    # Navigation by linear list traversal (the paper's §2.2 overhead)
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        assert self.flat is not None
        view = self.fh.view
        self.stats.list_scans += 1
        if end and data_off > 0:
            q, r = divmod(data_off - 1, view.ft_size)
            i, within = self.flat.find_position(r)  # linear scan
            return (
                view.disp
                + q * view.ft_extent
                + self.flat.offsets[i]
                + within
                + 1
            )
        q, r = divmod(data_off, view.ft_size)
        i, within = self.flat.find_position(r)  # linear scan
        if i == len(self.flat):
            return view.disp + (q + 1) * view.ft_extent + self.flat.offsets[0]
        return view.disp + q * view.ft_extent + self.flat.offsets[i] + within

    def data_of_abs(self, abs_off: int) -> int:
        assert self.flat is not None
        view = self.fh.view
        rel = abs_off - view.disp
        if rel <= 0:
            return 0
        self.stats.list_scans += 1
        q, r = divmod(rel, view.ft_extent)
        return q * view.ft_size + self.flat.data_before(r)  # linear scan

    # ------------------------------------------------------------------
    # Memory side: per-access flattening, per-tuple copy loops
    # ------------------------------------------------------------------
    def _mem_blocks(
        self, mem: MemDescriptor, d_lo: int, d_hi: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(buffer_offset, length, data_offset)`` per contiguous
        memory block overlapping data range ``[d_lo, d_hi)``.

        The memtype ol-list is built fresh for the access — exactly as
        ROMIO does — and traversed linearly from the start.
        """
        flat = flatten_datatype(mem.memtype)  # fresh list, per access
        self.stats.list_tuples_built += len(flat)
        ext = mem.memtype.extent
        base = mem.origin
        dpos = 0
        for inst in range(mem.count):
            ioff = base + inst * ext
            for off, ln in zip(flat.offsets, flat.lengths):
                if dpos + ln > d_lo and dpos < d_hi:
                    a = max(d_lo - dpos, 0)
                    b = min(d_hi - dpos, ln)
                    yield (ioff + off + a, b - a, dpos + a)
                dpos += ln
                if dpos >= d_hi:
                    return

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        if mem.is_contiguous:
            out[: d_hi - d_lo] = mem.contiguous_slice(d_lo, d_hi - d_lo)
            return
        buf = mem.as_bytes
        for boff, ln, doff in self._mem_blocks(mem, d_lo, d_hi):
            out[doff - d_lo : doff - d_lo + ln] = buf[boff : boff + ln]

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        if mem.is_contiguous:
            mem.contiguous_slice(d_lo, d_hi - d_lo)[...] = data[: d_hi - d_lo]
            return
        buf = mem.as_bytes
        for boff, ln, doff in self._mem_blocks(mem, d_lo, d_hi):
            buf[boff : boff + ln] = data[doff - d_lo : doff - d_lo + ln]

    # ------------------------------------------------------------------
    # View-side block walk (linear, with running state as in ROMIO)
    # ------------------------------------------------------------------
    def _view_blocks(
        self, lo: int, hi: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(abs_offset, length, data_offset)`` per view block
        clipped to absolute range ``[lo, hi)``, walking the flattened list
        one tuple at a time."""
        assert self.flat is not None
        view = self.fh.view
        flat = self.flat
        if len(flat) == 0:
            return
        ext = view.ft_extent
        fsize = view.ft_size
        rel = lo - view.disp
        inst = max(rel - flat.end_offset(), 0) // ext if ext else 0
        while True:
            base = view.disp + inst * ext
            if base + flat.offsets[0] >= hi:
                return
            dbase = inst * fsize
            dpos = 0
            for off, ln in zip(flat.offsets, flat.lengths):
                a = base + off
                b = a + ln
                if b > lo and a < hi:
                    s = max(lo - a, 0)
                    e = min(hi - a, ln)
                    yield (a + s, e - s, dbase + dpos + s)
                dpos += ln
                if a >= hi:
                    break
            inst += 1

    # ------------------------------------------------------------------
    # Deferred-piece codec: the executor streams blocks through the
    # engine's linear walk at execution time (independent access never
    # materializes a per-access list — it re-walks instead).
    # ------------------------------------------------------------------
    def stream_gather_window(self, fb: np.ndarray, wlo: int, whi: int,
                             arr: np.ndarray, base_d: int,
                             d_hi: int) -> int:
        copied = 0
        for a, ln, doff in self._view_blocks(wlo, whi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            arr[doff - base_d : doff - base_d + ln] = (
                fb[a - wlo : a - wlo + ln]
            )
            copied += ln
        return copied

    def stream_scatter_window(self, fb: np.ndarray, wlo: int, whi: int,
                              arr: np.ndarray, base_d: int,
                              d_hi: int) -> int:
        copied = 0
        for a, ln, doff in self._view_blocks(wlo, whi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            fb[a - wlo : a - wlo + ln] = (
                arr[doff - base_d : doff - base_d + ln]
            )
            copied += ln
        return copied

    def stream_read_blocks(self, file, lo: int, hi: int, arr: np.ndarray,
                           base_d: int, d_hi: int) -> None:
        for a, ln, doff in self._view_blocks(lo, hi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            pos = doff - base_d
            got = file.pread_into(a, arr[pos : pos + ln])
            if got < ln:
                arr[pos + got : pos + ln] = 0
        return None

    def stream_write_blocks(self, file, lo: int, hi: int, arr: np.ndarray,
                            base_d: int, d_hi: int) -> None:
        for a, ln, doff in self._view_blocks(lo, hi):
            if doff >= d_hi:
                break
            ln = min(ln, d_hi - doff)
            pos = doff - base_d
            file.pwrite(a, arr[pos : pos + ln])
        return None

    # ------------------------------------------------------------------
    # Collective access: per-access ol-list exchange + list merging.
    # Each collective runs as two plans: plan A stages/ships the ol-list
    # payloads, then — because the window schedule depends on the
    # *received* lists, which the conventional scheme cannot know in
    # advance — the IOP builds plan B from the inbound lists and runs it
    # seeded with plan A's exchange buffers.
    # ------------------------------------------------------------------
    def _expand_sends(self, rng: AccessRange, domains, take_stage: bool):
        """AP side: one expanded ol-list per IOP whose domain I touch."""
        assert self.flat is not None
        view = self.fh.view
        sends: List[Send] = []
        for iop, (dlo, dhi) in enumerate(domains):
            a_lo = max(dlo, rng.abs_lo)
            a_hi = min(dhi, rng.abs_hi)
            if a_hi <= a_lo:
                continue
            ol = expand_range(
                self.flat, view.ft_extent, view.disp, a_lo, a_hi
            )
            if len(ol) == 0:
                continue
            self.stats.list_tuples_built += len(ol)
            self.stats.list_tuples_sent += len(ol)
            dl = self.data_of_abs(ol.offsets[0])
            sends.append(Send(iop, ol=ol, d_lo=dl, take_stage=take_stage))
        return sends

    def _pick_window(self, ol: OLList, cursor: List[int], wlo: int,
                     whi: int) -> Tuple[List[Tuple[int, int]], int]:
        """Advance one contribution's linear cursor through a window;
        returns the clipped tuples and their starting data position."""
        idx, dpos = cursor
        picked: List[Tuple[int, int]] = []
        dstart = dpos
        while idx < len(ol):
            o, ln = ol.offsets[idx], ol.lengths[idx]
            if o >= whi:
                break
            if o + ln <= wlo:
                idx += 1
                dpos += ln
                continue
            s = max(wlo - o, 0)
            e = min(whi - o, ln)
            if not picked:
                dstart = dpos + s
            picked.append((o + s, e - s))
            if o + ln <= whi:
                idx += 1
                dpos += ln
            else:
                break  # block continues into the next window
        cursor[0], cursor[1] = idx, dpos
        return picked, dstart

    def _collective_write(self, mem, rng: AccessRange, ranges, domains):
        assert self.flat is not None
        fh = self.fh
        comm = fh.comm
        niops = len(domains)
        d0, d1 = rng.data_lo, rng.data_hi
        # --- Plan A: stage my data once, ship (list + data) per IOP.
        # Expanding the per-IOP ol-lists is the conventional scheme's
        # per-access list building (§2.1) — billed to the plan phase.
        t0 = time.perf_counter()
        ops_a: List[object] = []
        slots_a = {}
        if not rng.empty:
            ops_a.append(GatherOp(d0, d1))
            slots_a[STAGE] = (d0, d1)
            sends = self._expand_sends(rng, domains, take_stage=True)
        else:
            sends = []
        ops_a.append(ExchangeOp(tuple(sends)))
        plan_a = IOPlan("write-collective(exchange)", d0, max(0, d1 - d0),
                        tuple(ops_a), slots=slots_a)
        self.stats.phases.add("plan", time.perf_counter() - t0)
        if trace.TRACE_ON:
            trace.TRACER.add("list_based.expand_lists", t0)
        bufs = self.run_plan(plan_a, mem)
        # --- IOP side: derive the window schedule from what arrived.
        if comm.rank >= niops:
            return
        dlo, dhi = domains[comm.rank]
        if dhi <= dlo:
            return
        t0 = time.perf_counter()
        contribs: List[Tuple[object, OLList]] = []
        seed = {}
        for src in range(comm.size):
            item = bufs.get(in_slot(src))
            if item is None:
                continue
            ol, data, dl = item
            if len(ol) == 0:
                continue
            slot = in_slot(src)
            contribs.append((slot, ol))
            seed[slot] = (dl, dl + int(ol.size), data)
        if not contribs:
            return
        ops_b: List[object] = []
        cursors = [[0, 0] for _ in contribs]
        for wlo, whi in windows(dlo, dhi, fh.hints.cb_buffer_size):
            parts = []  # (slot, picked tuples, data start within ol)
            for ci, (slot, ol) in enumerate(contribs):
                picked, dstart = self._pick_window(ol, cursors[ci],
                                                   wlo, whi)
                if picked:
                    parts.append((slot, picked, dstart))
            if not parts:
                continue
            # ROMIO's contiguity optimization: merge all lists; skip the
            # pre-read iff they form one block covering the window.
            self.stats.list_tuples_merged += sum(
                len(p) for _, p, _ in parts
            )
            merged = merge_lists([OLList(p) for _, p, _ in parts])
            covered = (
                len(merged) == 1
                and merged[0][0] <= wlo
                and merged[0][0] + merged[0][1] >= whi
            )
            pieces = []
            for slot, picked, dstart in parts:
                total = sum(ln for _, ln in picked)
                base = seed[slot][0]
                pieces.append(Piece(slot, base + dstart,
                                    base + dstart + total,
                                    TupleBlocks(tuple(picked))))
            ops_b.append(FileWriteOp(
                wlo, whi, "assemble" if covered else "rmw", tuple(pieces)
            ))
        self.stats.phases.add("plan", time.perf_counter() - t0)
        if trace.TRACE_ON:
            trace.TRACER.add("list_based.derive_iop_schedule", t0)
        if ops_b:
            plan_b = IOPlan("write-collective(iop)", dlo, 0, tuple(ops_b))
            self.run_plan(plan_b, buffers=seed)

    def _collective_read(self, mem, rng: AccessRange, ranges, domains):
        assert self.flat is not None
        fh = self.fh
        comm = fh.comm
        niops = len(domains)
        d0 = rng.data_lo
        # --- Plan A: ship request lists to the IOPs (per-access list
        # building again — plan phase).
        t0 = time.perf_counter()
        if not rng.empty:
            sends = self._expand_sends(rng, domains, take_stage=False)
        else:
            sends = []
        my_requests = [(s.rank, int(s.ol.size), s.d_lo) for s in sends]
        plan_a = IOPlan("read-collective(request)", d0, 0,
                        (ExchangeOp(tuple(sends)),))
        self.stats.phases.add("plan", time.perf_counter() - t0)
        if trace.TRACE_ON:
            trace.TRACER.add("list_based.expand_lists", t0)
        bufs = self.run_plan(plan_a)
        # --- Plan B: serve inbound requests window by window, exchange
        # the replies, scatter my returned segments.
        t0 = time.perf_counter()
        ops_b: List[object] = []
        slots_b = {}
        sends_b: List[Send] = []
        if comm.rank < niops:
            dlo, dhi = domains[comm.rank]
            incoming = []
            for src in range(comm.size):
                item = bufs.get(in_slot(src))
                if item is None:
                    continue
                ol, dl = item
                if len(ol) == 0:
                    continue
                incoming.append((src, ol, dl))
            if incoming and dhi > dlo:
                for src, ol, dl in incoming:
                    slots_b[out_slot(src)] = (dl, dl + int(ol.size))
                cursors = {src: [0, 0] for src, _, _ in incoming}
                for wlo, whi in windows(dlo, dhi,
                                        fh.hints.cb_buffer_size):
                    pieces = []
                    for src, ol, dl in incoming:
                        picked, dstart = self._pick_window(
                            ol, cursors[src], wlo, whi
                        )
                        if picked:
                            total = sum(ln for _, ln in picked)
                            pieces.append(Piece(
                                out_slot(src), dl + dstart,
                                dl + dstart + total,
                                TupleBlocks(tuple(picked)),
                            ))
                    if pieces:
                        ops_b.append(FileReadOp(wlo, whi, "window",
                                                tuple(pieces)))
                sends_b = [Send(src, slot=out_slot(src))
                           for src, _, _ in incoming]
        ops_b.append(ExchangeOp(tuple(sends_b)))
        if not rng.empty:
            for iop, size, dl in my_requests:
                ops_b.append(ScatterOp(dl, dl + size, in_slot(iop)))
        nbytes = rng.data_hi - d0 if not rng.empty else 0
        plan_b = IOPlan("read-collective(serve)", d0, nbytes,
                        tuple(ops_b), slots=slots_b)
        self.stats.phases.add("plan", time.perf_counter() - t0)
        if trace.TRACE_ON:
            trace.TRACER.add("list_based.derive_iop_schedule", t0)
        self.run_plan(plan_b, mem)

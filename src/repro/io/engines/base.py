"""Engine interface and the logic both engines share.

An engine translates *view-relative data offsets* into file accesses.  The
file handle drives it through five operations: ``setup_view`` (collective,
once per ``set_view``) and the four access kinds (independent/collective ×
read/write), each given a :class:`~repro.io.fileview.MemDescriptor` and
the starting data offset through the view.

The base class implements everything that does not depend on the datatype
representation: the contiguous-view fast paths (c-c and nc-c in the
paper's Fig. 1 taxonomy), collective orchestration order, and common
geometry.  Subclasses supply navigation, the pack/unpack kernels, the
collective metadata exchange, and the contiguity check — precisely the
pieces the paper replaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.errors import IOEngineError
from repro.io.fileview import MemDescriptor
from repro.io.two_phase import (
    AccessRange,
    aggregate_ranges,
    partition_domains,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.file_handle import File

__all__ = ["IOEngine", "EngineStats"]


@dataclass
class EngineStats:
    """Counters quantifying the paper's §2.4 overheads per rank.

    The list-based engine increments the ``list_*`` family; the listless
    engine increments ``ff_*``.  Tests and benchmarks read these to
    verify, for example, that the listless engine builds zero tuples, or
    how many tuples a collective access shipped.
    """

    #: ol-list tuples materialized (flattening + per-access expansions)
    list_tuples_built: int = 0
    #: ol-list tuples serialized to other ranks (16 B each on the wire)
    list_tuples_sent: int = 0
    #: tuples fed through the O(Σ Nblock) collective-write merge
    list_tuples_merged: int = 0
    #: linear list scans performed for navigation
    list_scans: int = 0
    #: O(depth) dataloop navigations performed
    ff_navigations: int = 0
    #: ff_pack/ff_unpack invocations on the memory side of accesses
    ff_kernel_calls: int = 0
    #: compact fileview bytes exchanged (one-time, at set_view)
    ff_view_bytes_exchanged: int = 0

    def snapshot(self) -> dict:
        return {
            "list_tuples_built": self.list_tuples_built,
            "list_tuples_sent": self.list_tuples_sent,
            "list_tuples_merged": self.list_tuples_merged,
            "list_scans": self.list_scans,
            "ff_navigations": self.ff_navigations,
            "ff_kernel_calls": self.ff_kernel_calls,
            "ff_view_bytes_exchanged": self.ff_view_bytes_exchanged,
        }


class IOEngine:
    """Abstract engine; one instance per (rank, open file)."""

    name = "abstract"

    def __init__(self, fh: "File") -> None:
        self.fh = fh
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Collective per-``set_view`` preparation."""
        raise NotImplementedError

    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        """Absolute file offset of view data byte ``data_off``."""
        raise NotImplementedError

    def data_of_abs(self, abs_off: int) -> int:
        """View data bytes strictly before absolute offset ``abs_off``."""
        raise NotImplementedError

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        """Pack memory data bytes ``[d_lo, d_hi)`` into ``out``."""
        raise NotImplementedError

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        """Unpack contiguous ``data`` into memory data bytes
        ``[d_lo, d_hi)``."""
        raise NotImplementedError

    def _sieve_write(self, mem: MemDescriptor, d0: int, lo: int,
                     hi: int) -> None:
        raise NotImplementedError

    def _sieve_read(self, mem: MemDescriptor, d0: int, lo: int,
                    hi: int) -> None:
        raise NotImplementedError

    def _collective_write(self, mem: MemDescriptor, rng: AccessRange,
                          ranges: List[AccessRange],
                          domains: List[Tuple[int, int]]) -> None:
        raise NotImplementedError

    def _collective_read(self, mem: MemDescriptor, rng: AccessRange,
                         ranges: List[AccessRange],
                         domains: List[Tuple[int, int]]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared geometry
    # ------------------------------------------------------------------
    def access_range(self, mem: MemDescriptor, d0: int) -> AccessRange:
        """Absolute file range of an access of ``mem.nbytes`` data bytes
        starting at view data offset ``d0``."""
        n = mem.nbytes
        if n == 0:
            return AccessRange(None, None, d0, d0)
        return AccessRange(
            self.abs_of_data(d0),
            self.abs_of_data(d0 + n, end=True),
            d0,
            d0 + n,
        )

    # ------------------------------------------------------------------
    # Independent access (fast paths shared; sieving in subclasses)
    # ------------------------------------------------------------------
    def write_independent(self, mem: MemDescriptor, d0: int) -> None:
        n = mem.nbytes
        if n == 0:
            return
        view = self.fh.view
        simfile = self.fh.simfile
        if view.is_contiguous:
            abs_lo = view.disp + d0
            if mem.is_contiguous:
                # c-c: one plain write.
                simfile.pwrite(abs_lo, mem.contiguous_slice(0, n))
            else:
                # nc-c: pack to a staging buffer, one plain write.
                stage = np.empty(n, dtype=np.uint8)
                self.pack_mem(mem, 0, n, stage)
                simfile.pwrite(abs_lo, stage)
            return
        lo = self.abs_of_data(d0)
        hi = self.abs_of_data(d0 + n, end=True)
        self._sieve_write(mem, d0, lo, hi)

    def read_independent(self, mem: MemDescriptor, d0: int) -> None:
        n = mem.nbytes
        if n == 0:
            return
        view = self.fh.view
        simfile = self.fh.simfile
        if view.is_contiguous:
            abs_lo = view.disp + d0
            if mem.is_contiguous:
                got = simfile.pread_into(abs_lo, mem.contiguous_slice(0, n))
                if got < n:
                    raise IOEngineError(
                        f"short read: {got} of {n} bytes at {abs_lo}"
                    )
            else:
                stage = np.empty(n, dtype=np.uint8)
                got = simfile.pread_into(abs_lo, stage)
                if got < n:
                    raise IOEngineError(
                        f"short read: {got} of {n} bytes at {abs_lo}"
                    )
                self.unpack_mem(mem, 0, n, stage)
            return
        lo = self.abs_of_data(d0)
        hi = self.abs_of_data(d0 + n, end=True)
        self._sieve_read(mem, d0, lo, hi)

    # ------------------------------------------------------------------
    # Collective access (orchestration shared; phases in subclasses)
    # ------------------------------------------------------------------
    def _collective(self, mem: MemDescriptor, d0: int, write: bool) -> None:
        comm = self.fh.comm
        rng = self.access_range(mem, d0)
        ranges, agg_lo, agg_hi = aggregate_ranges(comm, rng)
        if agg_lo is None:
            return  # nobody accesses anything
        niops = self.fh.hints.effective_cb_nodes(comm.size)
        domains = partition_domains(agg_lo, agg_hi, niops)
        if write:
            self._collective_write(mem, rng, ranges, domains)
        else:
            self._collective_read(mem, rng, ranges, domains)

    def write_collective(self, mem: MemDescriptor, d0: int) -> None:
        self._collective(mem, d0, write=True)

    def read_collective(self, mem: MemDescriptor, d0: int) -> None:
        self._collective(mem, d0, write=False)

"""Engine interface and the logic both engines share.

An engine translates *view-relative data offsets* into file accesses.  The
file handle drives it through five operations: ``setup_view`` (collective,
once per ``set_view``) and the four access kinds (independent/collective ×
read/write), each given a :class:`~repro.io.fileview.MemDescriptor` and
the starting data offset through the view.

Every access is performed in two explicit steps (see ``docs/planning.md``):
the engine's :class:`~repro.plan.planner.Planner` *plans* it — producing a
declarative :class:`~repro.plan.plan.IOPlan` of typed ops — and its
:class:`~repro.plan.executor.SimFileExecutor` *runs* the plan.  The base
class owns that plumbing plus the collective orchestration order and the
common geometry.  Subclasses supply navigation, the pack/unpack codec the
executor copies memory with, the plan geometry (a navigable compact view,
or nothing), and the collective phases — precisely the representational
pieces the paper contrasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.io.fileview import MemDescriptor
from repro.io.two_phase import AccessRange
from repro.obs import metrics, trace
from repro.obs.phases import PhaseAccumulator, RoundLog
from repro.plan.stats import PlanStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.file_handle import File
    from repro.plan.plan import IOPlan

__all__ = ["IOEngine", "EngineStats"]


@dataclass
class EngineStats:
    """Counters quantifying the paper's §2.4 overheads per rank.

    The list-based engine increments the ``list_*`` family; the listless
    engine increments ``ff_*``.  Tests and benchmarks read these to
    verify, for example, that the listless engine builds zero tuples, or
    how many tuples a collective access shipped.  The nested ``plan``
    counters describe the plan layer (windows planned, bytes coalesced,
    cache hits, ops executed) and are flattened into :meth:`snapshot`.
    """

    #: ol-list tuples materialized (flattening + per-access expansions)
    list_tuples_built: int = 0
    #: ol-list tuples serialized to other ranks (16 B each on the wire)
    list_tuples_sent: int = 0
    #: tuples fed through the O(Σ Nblock) collective-write merge
    list_tuples_merged: int = 0
    #: linear list scans performed for navigation
    list_scans: int = 0
    #: O(depth) dataloop navigations performed
    ff_navigations: int = 0
    #: ff_pack/ff_unpack invocations on the memory side of accesses
    ff_kernel_calls: int = 0
    #: compact fileview bytes exchanged (one-time, at set_view)
    ff_view_bytes_exchanged: int = 0
    #: aggregation rounds scheduled across this rank's collectives
    coll_rounds: int = 0
    #: worst byte imbalance a domain-alignment strategy introduced
    #: (largest minus smallest domain of any collective so far)
    coll_domain_skew: int = 0
    #: plan-layer counters (shared by this engine's planner and executor)
    plan: PlanStats = field(default_factory=PlanStats)
    #: per-phase wall-time buckets (plan/pack/unpack/file_io/exchange/
    #: lock/sync), shared with this engine's planner and executor — the
    #: Table-3-style decomposition (``repro.obs.phases``)
    phases: PhaseAccumulator = field(default_factory=PhaseAccumulator)
    #: per-round exchange/file_io decomposition of collective accesses,
    #: appended by the executor at every RoundOp span
    rounds: RoundLog = field(default_factory=RoundLog)

    def snapshot(self) -> dict:
        """This engine's counters, sorted for diffable output.

        Strictly per-engine: the process-global block-program and
        kernel-path counters are *not* merged in here (they used to be,
        which double-reported them across open files and made per-engine
        reset a lie) — the :mod:`repro.obs.metrics` registry reports
        them exactly once under its ``global`` section.
        """
        out = {
            "list_tuples_built": self.list_tuples_built,
            "list_tuples_sent": self.list_tuples_sent,
            "list_tuples_merged": self.list_tuples_merged,
            "list_scans": self.list_scans,
            "ff_navigations": self.ff_navigations,
            "ff_kernel_calls": self.ff_kernel_calls,
            "ff_view_bytes_exchanged": self.ff_view_bytes_exchanged,
            "coll_rounds": self.coll_rounds,
            "coll_domain_skew": self.coll_domain_skew,
        }
        out.update(self.plan.snapshot())
        return dict(sorted(out.items()))


class IOEngine:
    """Abstract engine; one instance per (rank, open file)."""

    name = "abstract"
    #: Whether this engine's plans may be served from the planner's LRU
    #: cache.  Listless plans derive from the cached compact fileview and
    #: are cacheable; the conventional engine re-expands ol-lists per
    #: access, so caching its plans would erase the very cost it models.
    cacheable_plans = True

    def __init__(self, fh: "File") -> None:
        self.fh = fh
        self.stats = EngineStats()
        # Imported lazily: repro.plan pulls in repro.io helpers, and the
        # engines themselves are imported lazily from the file handle.
        from repro.plan.executor import SimFileExecutor
        from repro.plan.planner import Planner

        self.planner = Planner(
            self, cacheable=self.cacheable_plans, stats=self.stats.plan,
            phases=self.stats.phases,
        )
        self.executor = SimFileExecutor(
            fh.simfile, codec=self, comm=fh.comm, stats=self.stats.plan,
            phases=self.stats.phases, rounds=self.stats.rounds,
        )
        metrics.register_engine(
            self, session=getattr(fh, "session", None)
        )

    def close(self) -> None:
        """Release engine resources (the executor's pipeline worker)."""
        self.executor.close()

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def setup_view(self) -> None:
        """Collective per-``set_view`` preparation.  Subclasses must call
        ``self.planner.invalidate()`` — a new view voids cached plans."""
        raise NotImplementedError

    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        """Absolute file offset of view data byte ``data_off``."""
        raise NotImplementedError

    def data_of_abs(self, abs_off: int) -> int:
        """View data bytes strictly before absolute offset ``abs_off``."""
        raise NotImplementedError

    def plan_geometry(self):
        """Navigable view geometry for the planner, or ``None``.

        Engines returning a :class:`~repro.core.fileview_cache.
        CompactFileview` get materialized block lists and per-window
        clipping in their plans; engines returning ``None`` get deferred
        pieces streamed through their own view walk at execution time.
        """
        return None

    def pack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                 out: np.ndarray) -> None:
        """Pack memory data bytes ``[d_lo, d_hi)`` into ``out``."""
        raise NotImplementedError

    def unpack_mem(self, mem: MemDescriptor, d_lo: int, d_hi: int,
                   data: np.ndarray) -> None:
        """Unpack contiguous ``data`` into memory data bytes
        ``[d_lo, d_hi)``."""
        raise NotImplementedError

    def collective_plan(self, write: bool, rng: AccessRange,
                        ranges: List[AccessRange],
                        domains: List[Tuple[int, int]],
                        schedule) -> "IOPlan":
        """Build the round-based plan for one collective access.

        Called by :func:`repro.io.aggregation.run_collective` after the
        range aggregation, domain partitioning and round scheduling —
        all engine-neutral.  The listless engine delegates to its
        (caching) planner; the list-based engine first ships ol-lists
        (its per-access metadata exchange), then derives the plan from
        what arrived.
        """
        raise NotImplementedError

    def collective_metadata(self, write: bool, rng: AccessRange,
                            ranges: List[AccessRange]):
        """The engine's :class:`repro.io.aggregation.CollectiveMetadata`
        for one access (how a rank learns which data bytes land in a
        window).  Required only by engines whose ``collective_plan``
        goes through the shared planner."""
        raise NotImplementedError

    def domain_geometry(self) -> Tuple[int, int]:
        """``(disp, ft_extent)`` of this rank's fileview — piggybacked
        on the collective range allgather so the ``block`` domain
        alignment can snap boundaries to any rank's block-period edges
        without an extra collective."""
        view = self.fh.view
        return (view.disp, view.ft_extent)

    # ------------------------------------------------------------------
    # Shared geometry
    # ------------------------------------------------------------------
    def access_range(self, mem: MemDescriptor, d0: int) -> AccessRange:
        """Absolute file range of an access of ``mem.nbytes`` data bytes
        starting at view data offset ``d0``."""
        n = mem.nbytes
        if n == 0:
            return AccessRange(None, None, d0, d0)
        return AccessRange(
            self.abs_of_data(d0),
            self.abs_of_data(d0 + n, end=True),
            d0,
            d0 + n,
        )

    # ------------------------------------------------------------------
    # Independent access: plan, then run
    # ------------------------------------------------------------------
    def plan_write_independent(self, mem: MemDescriptor,
                               d0: int) -> "IOPlan":
        return self.planner.plan_independent(d0, mem.nbytes, write=True)

    def plan_read_independent(self, mem: MemDescriptor,
                              d0: int) -> "IOPlan":
        return self.planner.plan_independent(d0, mem.nbytes, write=False)

    def run_plan(self, plan: "IOPlan",
                 mem: Optional[MemDescriptor] = None,
                 buffers: Optional[dict] = None,
                 file_delta: int = 0) -> dict:
        if self.fh.hints.ship_protocol is not None:
            # Sharded-backend request shipping: rewrite eligible file
            # ops into ShipOps (no-op on non-sharded backends).
            from repro.io import shipping

            plan = shipping.maybe_rewrite(self, plan)
        return self.executor.run(plan, mem, buffers, file_delta)

    def write_independent(self, mem: MemDescriptor, d0: int) -> None:
        if mem.nbytes == 0:
            return
        with trace.span(f"{self.name}.write_independent",
                        bytes=mem.nbytes):
            plan, delta = self.planner.plan_independent_bound(
                d0, mem.nbytes, write=True
            )
            self.run_plan(plan, mem, file_delta=delta)

    def read_independent(self, mem: MemDescriptor, d0: int) -> None:
        if mem.nbytes == 0:
            return
        with trace.span(f"{self.name}.read_independent",
                        bytes=mem.nbytes):
            plan, delta = self.planner.plan_independent_bound(
                d0, mem.nbytes, write=False
            )
            self.run_plan(plan, mem, file_delta=delta)

    # ------------------------------------------------------------------
    # Collective access (round-based driver shared across engines)
    # ------------------------------------------------------------------
    def _collective(self, mem: MemDescriptor, d0: int, write: bool) -> None:
        # Imported lazily like the rest of the plan machinery.
        from repro.io.aggregation import run_collective

        run_collective(self, mem, d0, write)

    def write_collective(self, mem: MemDescriptor, d0: int) -> None:
        with trace.span(f"{self.name}.write_collective",
                        bytes=mem.nbytes):
            self._collective(mem, d0, write=True)

    def read_collective(self, mem: MemDescriptor, d0: int) -> None:
        with trace.span(f"{self.name}.read_collective",
                        bytes=mem.nbytes):
            self._collective(mem, d0, write=False)

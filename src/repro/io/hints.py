"""MPI-IO hints (the ``MPI_Info`` knobs ROMIO honors).

Both engines obey the same buffer-size hints, so a hint change affects
them identically and measured differences stay attributable to the
datatype handling:

``ind_rd_buffer_size`` / ``ind_wr_buffer_size``
    file-buffer sizes for independent data sieving (ROMIO defaults:
    4 MB read, 512 kB write — writes sieve in smaller blocks because the
    region must be locked).
``cb_buffer_size``
    file-buffer size per IOP window in two-phase collective I/O (4 MB).
``cb_nodes``
    number of I/O processes (IOPs); default: every rank (the usual
    configuration on the paper's single-node SX runs).
``ds_read`` / ``ds_write``
    enable data sieving for independent reads/writes; disabling falls
    back to one file access per contiguous block (the "multiple file
    accesses" alternative the paper's outlook discusses).
``ff_block_programs``
    use the compiled block-program cache (``repro.core.blockprog``) on
    the listless engine's pack/unpack path (default on; see
    ``docs/kernels.md``).
``obs_trace``
    turn on span tracing (``repro.obs.trace``) when the file is opened —
    a per-open convenience for the process-wide ``REPRO_TRACE`` /
    ``set_tracing()`` switch (see ``docs/observability.md``).
``cb_domain_align``
    file-domain partitioning strategy for two-phase collectives
    (``even`` / ``stripe`` / ``block``; see ``docs/collective.md``) —
    unset lets the cost model choose per access.
``cb_pipeline``
    pipelining of collective aggregation rounds (``auto`` / ``on`` /
    ``off``; see ``docs/collective.md``): overlap each round's file I/O
    with the next round's pack/exchange and relax the per-round
    alltoall to point-to-point completion tracking.  ``auto`` lets the
    cost model decide from the round count.
``ship_protocol``
    request-shipping protocol against a striped multi-server backend
    (``repro.fs.sharded``; see ``docs/shipping.md``): ``list`` ships
    exploded per-shard offset/length lists, ``dtype`` ships the compact
    fileview descriptor plus access params and lets the servers flatten
    on the fly — the list-I/O vs datatype-I/O comparison of
    "Noncontiguous I/O through PVFS".  Unset (the default) keeps every
    access on the plain per-primitive wire path; ignored on
    non-sharded backends.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.errors import HintError

__all__ = ["Hints", "DOMAIN_ALIGNMENTS", "PIPELINE_MODES",
           "SHIP_PROTOCOLS"]

#: Legal values of the ``cb_domain_align`` hint (``None`` → automatic).
DOMAIN_ALIGNMENTS = ("even", "stripe", "block")

#: Legal values of the ``cb_pipeline`` hint.
PIPELINE_MODES = ("auto", "on", "off")

#: Legal values of the ``ship_protocol`` hint (``None`` → no shipping).
SHIP_PROTOCOLS = ("list", "dtype")


def _to_bool(value: str) -> bool:
    return value.lower() in ("true", "1", "enable", "yes")


@dataclass(frozen=True)
class Hints:
    """Validated hint set for one open file."""

    ind_rd_buffer_size: int = 4 * 1024 * 1024
    ind_wr_buffer_size: int = 512 * 1024
    cb_buffer_size: int = 4 * 1024 * 1024
    cb_nodes: Optional[int] = None  # None → all ranks
    ds_read: bool = True
    ds_write: bool = True
    #: Use the compiled block-program cache on the listless engine's
    #: pack/unpack path (A/B toggle; the process-wide REPRO_BLOCKPROG
    #: environment switch overrides it globally).
    ff_block_programs: bool = True
    #: Enable span tracing for the process when this file is opened
    #: (never disables: tracing already on stays on).
    obs_trace: bool = False
    #: Striping hints, honored only at file creation (as in ROMIO/Lustre):
    #: number of simulated disks and stripe width.  None → file-system
    #: defaults.
    striping_factor: Optional[int] = None
    striping_unit: Optional[int] = None
    #: File-domain partitioning strategy for two-phase collectives:
    #: ``even`` (ROMIO's byte split), ``stripe`` (domains aligned to
    #: stripe boundaries) or ``block`` (boundaries snapped to fileview
    #: block edges).  ``None`` → the cost model picks per access.
    cb_domain_align: Optional[str] = None
    #: Pipelining of collective aggregation rounds: ``on`` overlaps each
    #: round's file I/O with the next round's pack/exchange (double-
    #: buffered windows, relaxed p2p round synchronization), ``off``
    #: keeps the strict exchange→file-I/O sequence, ``auto`` lets the
    #: cost model decide from the round count.
    cb_pipeline: str = "auto"
    #: Request-shipping protocol against a sharded multi-server backend:
    #: ``list`` (exploded per-shard ol-lists) or ``dtype`` (compact
    #: fileview + access params, server-side flattening).  ``None``
    #: disables shipping; silently ignored on non-sharded backends.
    ship_protocol: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("ind_rd_buffer_size", "ind_wr_buffer_size",
                     "cb_buffer_size"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise HintError(f"{name} must be a positive int, got {v!r}")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise HintError(f"cb_nodes must be >= 1, got {self.cb_nodes}")
        if self.striping_factor is not None and self.striping_factor < 1:
            raise HintError(
                f"striping_factor must be >= 1, got {self.striping_factor}"
            )
        if self.striping_unit is not None and self.striping_unit < 1:
            raise HintError(
                f"striping_unit must be >= 1, got {self.striping_unit}"
            )
        if (self.cb_domain_align is not None
                and self.cb_domain_align not in DOMAIN_ALIGNMENTS):
            raise HintError(
                f"cb_domain_align must be one of "
                f"{'/'.join(DOMAIN_ALIGNMENTS)}, got "
                f"{self.cb_domain_align!r}"
            )
        if self.cb_pipeline not in PIPELINE_MODES:
            raise HintError(
                f"cb_pipeline must be one of "
                f"{'/'.join(PIPELINE_MODES)}, got {self.cb_pipeline!r}"
            )
        if (self.ship_protocol is not None
                and self.ship_protocol not in SHIP_PROTOCOLS):
            raise HintError(
                f"ship_protocol must be one of "
                f"{'/'.join(SHIP_PROTOCOLS)}, got {self.ship_protocol!r}"
            )

    #: Per-field string coercion for :meth:`from_mapping` (``MPI_Info``
    #: values arrive as strings).  Explicit per field — guessing from
    #: the annotation text broke as soon as a non-int/bool field showed
    #: up.  Fields without an entry (``cb_domain_align``,
    #: ``cb_pipeline``) take the string as-is and are validated by
    #: ``__post_init__``.
    _CONVERTERS = {
        "ind_rd_buffer_size": int,
        "ind_wr_buffer_size": int,
        "cb_buffer_size": int,
        "cb_nodes": int,
        "striping_factor": int,
        "striping_unit": int,
        "ds_read": _to_bool,
        "ds_write": _to_bool,
        "ff_block_programs": _to_bool,
        "obs_trace": _to_bool,
    }

    @classmethod
    def from_mapping(cls, info: Optional[Mapping[str, object]]) -> "Hints":
        """Build hints from an ``MPI_Info``-style string mapping.

        Unknown keys raise (silently ignoring typos hides performance
        bugs; real ROMIO ignores them, but a library should not).
        String values are coerced through the per-field converter table;
        a malformed value raises a :class:`~repro.errors.HintError`
        naming the hint.
        """
        if not info:
            return cls()
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        kwargs = {}
        for key, value in info.items():
            if key not in known:
                raise HintError(f"unknown hint {key!r}")
            convert = cls._CONVERTERS.get(key)
            if convert is not None and isinstance(value, str):
                try:
                    value = convert(value)
                except ValueError as exc:
                    raise HintError(
                        f"hint {key!r} has malformed value {value!r}"
                    ) from exc
            kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    def effective_cb_nodes(self, comm_size: int) -> int:
        """IOP count clamped to the communicator size."""
        if self.cb_nodes is None:
            return comm_size
        return min(self.cb_nodes, comm_size)

    def fingerprint(self) -> tuple:
        """The planning-relevant hint values, as a hashable tuple.

        Included in plan-cache and replay-table keys so a ``set_info``
        hint change — which does *not* bump the planner's view epoch —
        can never replay a plan built under different planning inputs
        (sieve toggles, buffer sizes, block-program use).  Presentation
        hints (``obs_trace``) and creation-time hints (striping) are
        deliberately excluded: they never affect what a plan contains.
        """
        return (
            self.ind_rd_buffer_size,
            self.ind_wr_buffer_size,
            self.cb_buffer_size,
            self.cb_nodes,
            self.ds_read,
            self.ds_write,
            self.ff_block_programs,
            self.cb_domain_align,
            self.cb_pipeline,
            self.ship_protocol,
        )

    def with_(self, **kwargs) -> "Hints":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)

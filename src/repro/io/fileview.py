"""The fileview: (displacement, etype, filetype) and a memory descriptor.

A fileview filters the file for one process: starting at byte ``disp``,
the ``filetype`` tiles the file indefinitely, and only the bytes covered
by its type map are visible.  File pointers and explicit offsets count in
units of the ``etype``; because a filetype is built from whole etypes, an
etype offset always lands on a data boundary of the view.

The view object is engine-neutral: it validates the MPI-IO restrictions
once and records the quantities both engines need (etype size, filetype
size/extent).  Engine-specific machinery — the flattened ol-list or the
compact dataloop navigation — hangs off the engines' own per-view state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.basic import BYTE
from repro.datatypes.validation import validate_etype, validate_filetype
from repro.errors import IOEngineError

__all__ = ["FileView", "MemDescriptor", "default_view"]


@dataclass(frozen=True)
class FileView:
    """One process' validated fileview."""

    disp: int
    etype: Datatype
    filetype: Datatype

    def __post_init__(self) -> None:
        if self.disp < 0:
            raise IOEngineError(f"negative view displacement {self.disp}")
        validate_etype(self.etype)
        validate_filetype(self.filetype, self.etype)

    # ------------------------------------------------------------------
    @property
    def esize(self) -> int:
        """Bytes of data per etype unit."""
        return self.etype.size

    @property
    def ft_size(self) -> int:
        """Data bytes per filetype instance."""
        return self.filetype.size

    @property
    def ft_extent(self) -> int:
        """File bytes spanned per filetype instance."""
        return self.filetype.extent

    @property
    def is_contiguous(self) -> bool:
        """True when the view exposes the file contiguously (the c-c /
        nc-c fast path: plain offset arithmetic, no sieving)."""
        return (
            self.filetype.is_contiguous
            and self.filetype.lb == 0
            and self.ft_size == self.ft_extent
        )

    def data_bytes_of_etypes(self, n_etypes: int) -> int:
        """Data bytes corresponding to ``n_etypes`` etype units."""
        return n_etypes * self.esize


def default_view() -> FileView:
    """The view every freshly opened file has: disp 0, etype/filetype BYTE."""
    return FileView(0, BYTE, BYTE)


@dataclass
class MemDescriptor:
    """The memory side of an access: ``count`` instances of ``memtype`` in
    ``buf`` (a NumPy array viewed as bytes).

    ``origin`` is the byte offset within ``buf`` that corresponds to the
    datatype origin; it defaults to ``-memtype.lb`` for marker-adjusted
    types so that the whole access stays inside the buffer.
    """

    buf: np.ndarray
    count: int
    memtype: Datatype
    origin: Optional[int] = None
    _bytes: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise IOEngineError(f"negative count {self.count}")
        self._bytes = self.buf.view(np.uint8).reshape(-1)
        if self.origin is None:
            self.origin = -min(self.memtype.lb, self.memtype.true_lb, 0)

    @property
    def nbytes(self) -> int:
        """Total data bytes of the access."""
        return self.count * self.memtype.size

    @property
    def as_bytes(self) -> np.ndarray:
        """Flat uint8 view of the buffer."""
        return self._bytes

    @property
    def is_contiguous(self) -> bool:
        """True when the data occupies one contiguous run of the buffer."""
        return self.memtype.is_contiguous

    def contiguous_slice(self, start: int, nbytes: int) -> np.ndarray:
        """For contiguous memtypes: the byte slice holding data bytes
        ``[start, start + nbytes)``."""
        base = self.origin + self.memtype.lb
        return self._bytes[base + start : base + start + nbytes]

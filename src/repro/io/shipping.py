"""Request shipping — whole noncontiguous accesses over the wire.

Against a striped multi-server backend (:mod:`repro.fs.sharded`), the
plain execution path is wasteful twice over: every direct-mode block
becomes its own wire round trip, and every byte crosses the wire next
to a fresh request header.  "Noncontiguous I/O through PVFS" shows the
fix — describe the *whole* noncontiguous access to each storage server
in one request — and compares the two ways of describing it:

list I/O (``ship_protocol=list``)
    the client flattens the access into per-shard offset/length lists
    and ships the exploded lists (16 bytes of descriptor per extent);
datatype I/O (``ship_protocol=dtype``)
    the client ships each rank's *compact fileview* once per (shard,
    view) and afterwards only ``(view id, data range, file delta)`` —
    constant descriptor bytes per access; the server flattens on the
    fly through the very same :func:`repro.fs.sharded.split_blocks`
    kernel the client-side list path uses, which is what makes the two
    protocols byte-identical by construction.

The module has two halves, matching the plan architecture:

:func:`maybe_rewrite`
    a plan→plan rewrite hooked into :meth:`IOEngine.run_plan` that
    replaces eligible :class:`~repro.plan.ops.FileReadOp` /
    :class:`~repro.plan.ops.FileWriteOp` instances with
    :class:`~repro.plan.ops.ShipOp`; ineligible ops (sieved windows,
    read-modify-write, pipelined overlap ops) keep the local path —
    sieving and locking semantics are exactly the point of those;
:func:`execute_ship`
    the executor-side interpreter for a ``ShipOp``: post one request
    per (piece, involved shard) in ascending shard order, then collect
    the replies in the same order (the per-connection FIFO makes that
    deterministic), scattering read payloads into staging buffers by
    the client's own extent arithmetic.

Coordinates inside a ``ShipOp`` stay plan-relative; the running plan's
``file_delta`` is applied at ship time (client-side for lists, by the
server for datatype I/O), so cached and replayed plans rewrite once
and re-ship anywhere — same contract as the local file primitives.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.core.fileview_cache import CompactFileview
from repro.core.gather import gather_blocks, scatter_blocks
from repro.errors import FFError, IOEngineError
from repro.obs import trace
from repro.plan.dataplane import block_lists
from repro.plan.ops import (
    Blocks,
    FileReadOp,
    FileWriteOp,
    Piece,
    ShipOp,
    in_slot,
    out_slot,
    STAGE,
)

__all__ = ["maybe_rewrite", "execute_ship"]

#: Rewritten-plan memo entries kept per engine (plans are cached by the
#: planner, so the same object comes back access after access; the memo
#: holds a strong reference to the source plan, which keeps ``id()``
#: keys valid).
_MEMO_CAP = 64


# ----------------------------------------------------------------------
# Plan rewriting
# ----------------------------------------------------------------------
def maybe_rewrite(engine, plan):
    """``plan`` with eligible file ops replaced by ShipOps — or ``plan``
    itself when nothing is eligible or the backend is not sharded.

    Memoized per engine on plan identity: planner-cached plans rewrite
    once and replay the rewritten program.
    """
    from repro.fs.sharded import ShardedFile

    fh = engine.fh
    protocol = fh.hints.ship_protocol
    if protocol is None or not isinstance(fh.simfile, ShardedFile):
        return plan
    memo = getattr(engine, "_ship_memo", None)
    if memo is None:
        memo = engine._ship_memo = {}
    hit = memo.get(id(plan))
    if hit is not None and hit[0] is plan:
        return hit[1]
    t0 = time.perf_counter()
    rewritten = _rewrite(engine, plan, protocol)
    engine.stats.phases.add("plan", time.perf_counter() - t0)
    if len(memo) >= _MEMO_CAP:
        memo.clear()
    memo[id(plan)] = (plan, rewritten)
    if trace.TRACE_ON:
        trace.TRACER.add("shipping.rewrite", t0, plan=plan.kind,
                         shipped=sum(isinstance(o, ShipOp)
                                     for o in rewritten.ops))
    return rewritten


def _rewrite(engine, plan, protocol):
    import dataclasses

    ops = []
    changed = False
    for op in plan.ops:
        ship = None
        if isinstance(op, (FileReadOp, FileWriteOp)):
            ship = _ship_op(engine, plan, op, protocol)
        if ship is not None:
            ops.append(ship)
            changed = True
        else:
            ops.append(op)
    if not changed:
        return plan
    return dataclasses.replace(plan, ops=tuple(ops))


def _ship_op(engine, plan, op, protocol) -> Optional[ShipOp]:
    """The ShipOp replacing ``op``, or ``None`` if it must stay local.

    Eligible are direct-mode ops and fully-covered (``assemble``)
    writes — the ones whose byte movement is exactly "these blocks,
    these data bytes", with no window pre-read, no sieving and no
    locking.  Sieved windows and rmw writes keep the local path: their
    read-modify-write and lock semantics already go through the
    :class:`~repro.fs.sharded.ShardedFile` surface per primitive.
    Pipelined (``overlap``) ops also stay local — their buffers must
    not be published before their round drains.
    """
    write = isinstance(op, FileWriteOp)
    if write:
        if op.mode not in ("direct", "assemble") or op.overlap:
            return None
    else:
        if op.mode != "direct" or op.overlap:
            return None
    if not op.pieces:
        return None
    pieces = []
    views = []
    for piece in op.pieces:
        if piece.blocks is None:
            blocks = _materialize(engine, op, piece)
            if blocks is None:
                return None
            piece = Piece(piece.slot, piece.d_lo, piece.d_hi, blocks)
        pieces.append(piece)
        views.append(
            _piece_view(engine, piece) if protocol == "dtype" else None
        )
    return ShipOp(
        op.lo, op.hi, write, protocol, tuple(pieces), tuple(views),
        strict=bool(getattr(op, "strict", False)),
    )


def _materialize(engine, op, piece) -> Optional[Blocks]:
    """Blocks of a deferred piece, via the engine's linear view walk
    (the list-based engine's independent direct ops carry these).

    Only the single-piece shape the planner actually emits is handled;
    the walked blocks must enumerate the piece's data bytes exactly and
    in order, else the op stays local.
    """
    walk = getattr(engine, "_view_blocks", None)
    if walk is None or len(op.pieces) != 1:
        return None
    offs, lens = [], []
    total = 0
    for a, ln, doff in walk(op.lo, op.hi):
        if doff >= piece.d_hi:
            break
        if doff != piece.d_lo + total:
            return None  # non-sequential data order: keep local
        ln = min(ln, piece.d_hi - doff)
        offs.append(a)
        lens.append(ln)
        total += ln
    if total != piece.d_hi - piece.d_lo:
        return None
    engine.stats.list_tuples_built += len(offs)
    return Blocks(np.asarray(offs, dtype=np.int64),
                  np.asarray(lens, dtype=np.int64))


def _piece_view(engine, piece) -> Optional[tuple]:
    """``(vid, cview, data_base)`` for the datatype protocol, or
    ``None`` → this piece falls back to list shipping.

    ``data_base`` translates the piece's plan-data coordinates into the
    *owning view's* data coordinates (an IOP serves pieces whose data
    range is another rank's); it is verified by round-tripping both
    ends of the piece through the compact view's navigation, so a
    mismatched or non-monotone block layout can never ship a wrong
    description — it degrades to the (always exact) list protocol.
    """
    resolved = _resolve_view(engine, piece.slot)
    if resolved is None:
        return None
    vid, cv = resolved
    blocks = piece.blocks
    offs, lens = _block_arrays(blocks)
    if offs.size == 0:
        return None
    if offs.size > 1 and not np.all(offs[1:] >= offs[:-1] + lens[:-1]):
        return None  # overlapping/unsorted blocks: data order != file order
    try:
        base = cv.data_of_abs(int(offs[0])) - piece.d_lo
        lo_ok = cv.abs_of_data(piece.d_lo + base) == int(offs[0])
        hi_ok = (
            cv.abs_of_data(piece.d_hi + base, end=True)
            == int(offs[-1] + lens[-1])
        )
        span_ok = int(lens.sum()) == piece.d_hi - piece.d_lo
    except (FFError, ValueError, ZeroDivisionError):
        return None
    if not (lo_ok and hi_ok and span_ok):
        return None
    return (vid, cv, base)


def _resolve_view(engine, slot) -> Optional[tuple]:
    """``(vid, CompactFileview)`` of the rank whose view describes
    ``slot``'s data bytes, or ``None`` when no compact view is at hand.

    Engines with a fileview cache (listless) resolve any rank's view;
    engines without one (list-based) can still describe their *own*
    accesses by compacting the live fileview on first use.
    """
    fh = engine.fh
    path = fh.simfile.name
    src = fh.comm.rank
    if slot is not STAGE:
        if not (isinstance(slot, tuple) and len(slot) == 2
                and slot[0] in ("in", "out")):
            return None
        src = slot[1]
        if slot != in_slot(src) and slot != out_slot(src):
            return None
    cache = getattr(engine, "cache", None)
    if cache is not None:
        try:
            cv = cache.view_of(src)
        except FFError:
            return None
        return (path, src, cache.epoch), cv
    if src != fh.comm.rank:
        return None
    view = fh.view
    memo = getattr(engine, "_ship_view_memo", None)
    if memo is not None and memo[0] is view:
        _v, seq, cv = memo
    else:
        seq = memo[1] + 1 if memo is not None else 0
        cv = CompactFileview.from_view(view.disp, view.etype,
                                       view.filetype)
        engine._ship_view_memo = (view, seq, cv)
    return (path, src, ("local", seq)), cv


def _block_arrays(blocks) -> Tuple[np.ndarray, np.ndarray]:
    if isinstance(blocks, Blocks):
        return blocks.offsets, blocks.lengths
    offs, lens = block_lists(blocks)
    return (np.asarray(offs, dtype=np.int64),
            np.asarray(lens, dtype=np.int64))


# ----------------------------------------------------------------------
# ShipOp execution
# ----------------------------------------------------------------------
def execute_ship(executor, plan, op: ShipOp, mem, bufs, rnd: int) -> None:
    """Run one ShipOp against the executor's :class:`ShardedFile`.

    Requests post per (piece, shard) in piece order then ascending
    shard order, and replies collect in exactly that order — each
    client connection is served FIFO by one handler thread, so the
    posts pipeline across shards without reordering hazards.
    """
    from repro.fs.sharded import split_blocks, to_global

    fh = executor.simfile
    stats = executor.stats
    fdelta = executor._fdelta
    ss = fh.fs.stripe_size
    nd = fh.fs.nshards
    stats.ship_ops += 1
    work = []  # (piece index, piece, view | None, per-shard parts)
    for i, piece in enumerate(op.pieces):
        if piece.d_hi <= piece.d_lo:
            continue
        offs, lens = _block_arrays(piece.blocks)
        if offs.size == 0:
            continue
        if fdelta:
            offs = offs + fdelta
        parts = split_blocks(offs, lens, ss, nd)
        view = op.views[i] if i < len(op.views) else None
        if op.protocol == "dtype" and view is None:
            stats.ship_dtype_fallbacks += 1
        work.append((i, piece, view, parts))
    # Install every compact view this op names BEFORE posting any data
    # request: the install is a synchronous round trip on the same FIFO
    # connection the data requests ride, so it must never interleave
    # with posted-but-uncollected requests.
    for _i, _piece, view, parts in work:
        if view is None:
            continue
        vid, cv, _base = view
        for k in sorted(parts):
            stats.ship_view_bytes += fh.ship_view(k, vid, cv)
    posted = []  # (piece index, shard, (loffs, lens, doffs), seq)
    for i, piece, view, parts in work:
        for k in sorted(parts):
            t0 = time.perf_counter()
            if view is not None:
                vid, cv, base = view
                if op.write:
                    payload = _gather_payload(
                        executor, bufs, piece, parts[k]
                    )
                    req = fh.ship_post_dt_write(
                        k, vid, piece.d_lo + base, piece.d_hi + base,
                        fdelta, payload, rnd,
                    )
                    stats.ship_wire_payload_bytes += payload.nbytes
                else:
                    req = fh.ship_post_dt_read(
                        k, vid, piece.d_lo + base, piece.d_hi + base,
                        fdelta, rnd,
                    )
            else:
                loffs, llens, _doffs = parts[k]
                if op.write:
                    payload = _gather_payload(
                        executor, bufs, piece, parts[k]
                    )
                    req = fh.ship_post_write(k, loffs, llens, payload,
                                             rnd)
                    stats.ship_wire_payload_bytes += payload.nbytes
                else:
                    req = fh.ship_post_read(k, loffs, llens, rnd)
            stats.ship_requests += 1
            stats.ship_wire_request_bytes += req
            if op.write:
                stats.executed_file_writes += 1
            else:
                stats.executed_file_reads += 1
            seq = fh.wire[k]["requests"]
            posted.append((i, k, parts[k], seq))
            if trace.TRACE_ON:
                trace.TRACER.add(
                    "shipping.post", t0, shard=k,
                    protocol=op.protocol if view is not None else "list",
                    write=op.write,
                )
            trace.add_edge("send", key=("ship", fh.name, k, seq),
                           peer=-1)
    for i, k, (loffs, llens, doffs), seq in posted:
        piece = op.pieces[i]
        t0 = time.perf_counter()
        if op.write:
            fh.ship_collect_write(k)
        else:
            buf = executor._ensure_buf(
                plan, piece.slot, piece.d_lo, piece.d_hi, mem, bufs
            )
            payload, short = fh.ship_collect_read(k)
            stats.ship_wire_payload_bytes += payload.nbytes
            if short is not None and op.strict:
                _pos, o, ln, got = short
                raise IOEngineError(
                    f"short read: {got} of {ln} bytes at "
                    f"{to_global(k, o, ss, nd) - fdelta}"
                )
            scatter_blocks(
                buf.arr, (piece.d_lo - buf.d_lo) + doffs, llens,
                payload, 0,
            )
        if trace.TRACE_ON:
            trace.TRACER.add("shipping.collect", t0, shard=k,
                             write=op.write)
        trace.add_edge("recv", key=("ship", fh.name, k, seq), peer=-1)


def _gather_payload(executor, bufs, piece, part) -> np.ndarray:
    """One shard's write payload: the piece's bytes for that shard's
    extents, concatenated in file order — the order both the list and
    the datatype server paths write them back out in."""
    _loffs, llens, doffs = part
    arr, base, _zc = executor._payload_view(bufs, piece)
    payload = np.empty(int(llens.sum()), dtype=np.uint8)
    gather_blocks(arr, (piece.d_lo - base) + doffs, llens, payload, 0)
    return payload

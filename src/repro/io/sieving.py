"""Data-sieving helpers shared by both engines.

Data sieving (Thakur et al., the paper's [11]) turns many small
non-contiguous file accesses into few large contiguous ones: a *file
buffer* is read covering a whole window of the file, the useful pieces
are copied between it and the user buffer, and — for writes — the window
is written back under a byte-range lock so the untouched gap bytes do not
clobber concurrent writers.

The engines differ only in how the "copy the useful pieces" step works,
so this module provides just the window geometry and the file-buffer
read/write operations with their locking discipline.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.fs.simfile import SimFile

__all__ = ["windows", "read_window", "write_window_locked",
           "coalesce_blocks"]


def windows(lo: int, hi: int, bufsize: int) -> Iterator[Tuple[int, int]]:
    """Yield file-buffer windows ``(wlo, whi)`` covering ``[lo, hi)``."""
    pos = lo
    while pos < hi:
        end = min(pos + bufsize, hi)
        yield (pos, end)
        pos = end


def coalesce_blocks(
    offsets: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Merge adjacent file blocks into single runs.

    Returns ``(offsets, lengths, merged_bytes)`` where ``merged_bytes``
    counts the bytes of blocks that were absorbed into a predecessor —
    the planner's ``coalesced_bytes`` statistic.  Blocks must be sorted
    and non-overlapping (as produced by ``blocks_range`` walks).
    """
    if offsets.size <= 1:
        return offsets, lengths, 0
    adjacent = offsets[1:] == offsets[:-1] + lengths[:-1]
    if not adjacent.any():
        return offsets, lengths, 0
    starts = np.concatenate(([True], ~adjacent))
    idx = np.flatnonzero(starts)
    groups = np.cumsum(starts) - 1
    new_lens = np.zeros(idx.size, dtype=np.int64)
    np.add.at(new_lens, groups, lengths)
    merged = int(lengths[1:][adjacent].sum())
    return offsets[idx], new_lens, merged


def read_window(simfile: SimFile, wlo: int, whi: int) -> np.ndarray:
    """Read ``[wlo, whi)`` into a fresh file buffer (zero-padded past EOF,
    so sieved writes extend files deterministically)."""
    from repro.obs import trace

    with trace.span("sieve.read_window", bytes=whi - wlo):
        fb = np.zeros(whi - wlo, dtype=np.uint8)
        simfile.pread_into(wlo, fb)
    return fb


def write_window_locked(
    simfile: SimFile,
    wlo: int,
    fb: np.ndarray,
    already_locked: bool = False,
) -> None:
    """Write a file buffer back (lock already held by caller when
    ``already_locked``)."""
    if already_locked:
        simfile.pwrite(wlo, fb)
        return
    whi = wlo + fb.size
    simfile.lock_range(wlo, whi)
    try:
        simfile.pwrite(wlo, fb)
    finally:
        simfile.unlock_range(wlo, whi)

"""Exception hierarchy for the repro package.

All errors raised by repro subsystems derive from :class:`ReproError`, so a
caller can catch everything from this library with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class DatatypeError(ReproError):
    """Invalid datatype construction or illegal use of a datatype.

    Raised for negative counts/blocklengths, type mismatches in
    constructors, and violations of the MPI-IO restrictions on etypes and
    filetypes (negative displacements, non-monotonic displacements).
    """


class FlattenError(ReproError):
    """Errors from the explicit (list-based) flattening subsystem."""


class FFError(ReproError):
    """Errors from the flattening-on-the-fly (listless) subsystem."""


class FileSystemError(ReproError):
    """Errors from the simulated file system (bad path, mode, bounds...)."""


class LockError(FileSystemError):
    """A byte-range lock could not be acquired or released consistently."""


class MPIRuntimeError(ReproError):
    """Errors from the SPMD runtime and communicator layer."""


class IOEngineError(ReproError):
    """Errors from the MPI-IO layer (bad view, mode violations...)."""


class HintError(IOEngineError):
    """An MPI-IO hint has an invalid value."""


class ServiceError(ReproError):
    """Errors from the multi-tenant I/O service (:mod:`repro.server`)."""


class ServiceQueueFull(ServiceError):
    """A tenant's request queue is at capacity — backpressure surfaces
    at post time, before any bytes are accepted."""


class ServiceWorkerError(ServiceError):
    """An IOP worker died (or failed) while executing a request."""

"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``noncontig``
    Run the synthetic benchmark of paper §4.1 at explicit parameters and
    print both engines' bandwidths, e.g.::

        python -m repro.cli noncontig --nprocs 2 --sblock 8 \\
            --nblock 4096 --pattern nc-nc --collective

``btio``
    Run the BTIO kernel (paper §4.2) for a class/P on both engines::

        python -m repro.cli btio --cls W --nprocs 4 --nsteps 3

``characterize``
    Print the analytic BTIO characterization (Tables 1–2 rows)::

        python -m repro.cli characterize --cls B --nprocs 16

``inspect``
    Describe a datatype expression (size, extent, Nblock, depth,
    flattening cost vs dataloop cost)::

        python -m repro.cli inspect "vector(16384, 1, 2, DOUBLE)"

``trace``
    Run a quick BT-IO with tracing enabled and export the spans as
    Chrome-trace/Perfetto JSON (one track per simulated rank); causal
    reports come from the same run::

        python -m repro.cli trace --export trace.json
        python -m repro.cli trace --critical-path --waits

``flight``
    Run a quick BT-IO and dump the always-on flight recorder's state
    on demand (the same record a world abort produces)::

        python -m repro.cli flight --out flight_record.json

``serve``
    Stand up the multi-tenant IOP service and drive a concurrent-client
    soak through it (admission control, cross-client batching,
    byte-identity check), printing the per-tenant figures::

        python -m repro.cli serve --clients 64 --files 8 --tenants 4
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.bench import (
    BTIOConfig,
    NoncontigConfig,
    btio_characterize,
    mb_per_s,
    run_btio,
    run_noncontig,
)
from repro.bench.reporting import fmt_bytes, format_table

__all__ = ["main"]


def _cmd_noncontig(args: argparse.Namespace) -> int:
    cfg = NoncontigConfig(
        nprocs=args.nprocs,
        blocklen=args.sblock,
        blockcount=args.nblock,
        pattern=args.pattern,
        collective=args.collective,
        nreps=args.nreps,
        verify=True,
    )
    rows = []
    for engine in ("list_based", "listless"):
        w, r = [], []
        for _ in range(args.repeats):
            res = run_noncontig(engine, cfg)
            w.append(res.write_bpp)
            r.append(res.read_bpp)
        rows.append(
            (
                engine,
                f"{mb_per_s(statistics.median(w)):.2f}",
                f"{mb_per_s(statistics.median(r)):.2f}",
            )
        )
    print(
        f"noncontig: P={cfg.nprocs} Sblock={cfg.blocklen}B "
        f"Nblock={cfg.blockcount} pattern={cfg.pattern} "
        f"{'collective' if cfg.collective else 'independent'} "
        f"({cfg.bytes_per_proc:,} B/proc/phase)"
    )
    print(format_table(["engine", "write MB/s", "read MB/s"], rows))
    return 0


def _cmd_btio(args: argparse.Namespace) -> int:
    rows = []
    times = {}
    phase_cols = []
    for engine in ("list_based", "listless"):
        samples = []
        for _ in range(args.repeats):
            r = run_btio(
                engine,
                BTIOConfig(cls=args.cls, nprocs=args.nprocs,
                           nsteps=args.nsteps, verify=args.verify),
                runtime=args.runtime,
            )
            samples.append(r)
        t = min(s.io_time.total for s in samples)
        bw = max(s.io_bandwidth for s in samples)
        times[engine] = t
        rows.append((engine, f"{t:.3f}", f"{mb_per_s(bw):.1f}"))
        best = min(samples, key=lambda s: s.io_time.total)
        phase_cols.append((engine, best.phases))
    print(f"BTIO class {args.cls}, P={args.nprocs}, "
          f"nsteps={args.nsteps}, runtime={args.runtime or 'sim'}")
    print(format_table(["engine", "io time [s]", "io MB/s"], rows))
    print(f"r_io = {times['list_based'] / times['listless']:.2f}")
    if getattr(args, "report", "time") == "phases":
        from repro.obs.phases import format_phase_table

        print("\nper-phase decomposition "
              "(seconds summed over ranks, best repeat):")
        print(format_phase_table(phase_cols))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    c = btio_characterize(args.cls, args.nprocs, nsteps=args.nsteps)
    rows = [
        ("grid", f"{c['grid']}^3"),
        ("cells per rank", c["ncells"]),
        ("Nblock per rank", c["nblock"]),
        ("Sblock", f"{c['sblock']} B"),
        ("Dstep", fmt_bytes(c["dstep"])),
        ("Drun", fmt_bytes(c["drun"])),
    ]
    print(f"BTIO class {args.cls}, P={args.nprocs}, "
          f"nsteps={c['nsteps']}:")
    print(format_table(["quantity", "value"], rows))
    return 0


def _parse_type(expr: str):
    """Evaluate a datatype expression in a restricted namespace."""
    from repro import datatypes as dt

    namespace = {
        name: getattr(dt, name)
        for name in dt.__all__
        if not name.startswith("_")
    }
    try:
        t = eval(expr, {"__builtins__": {}}, namespace)  # noqa: S307
    except Exception as exc:  # pragma: no cover - user input path
        raise SystemExit(f"cannot evaluate datatype expression: {exc}")
    return t


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.dataloop import compile_dataloop
    from repro.datatypes import decode
    from repro.flatten import flatten_datatype

    t = _parse_type(args.expr)
    t0 = time.perf_counter()
    loop = compile_dataloop(t)
    t_compile = time.perf_counter() - t0
    t0 = time.perf_counter()
    flat = flatten_datatype(t)
    t_flatten = time.perf_counter() - t0
    rows = [
        ("size (data bytes)", t.size),
        ("extent", t.extent),
        ("lb / ub", f"{t.lb} / {t.ub}"),
        ("true lb / ub", f"{t.true_lb} / {t.true_ub}"),
        ("Nblock", t.num_blocks),
        ("tree depth", t.depth),
        ("monotonic (filetype-legal order)", t.is_monotonic),
        ("contiguous", t.is_contiguous),
        ("ol-list memory", fmt_bytes(flat.nbytes_repr)),
        ("compact tree wire size",
         fmt_bytes(decode.tree_nbytes(decode.to_tree(t)))),
        ("explicit flatten time", f"{t_flatten * 1e3:.3f} ms"),
        ("dataloop compile time", f"{t_compile * 1e3:.3f} ms"),
        ("dataloop depth", loop.depth if loop else "-"),
    ]
    print(format_table(["property", "value"], rows))
    from repro.datatypes.describe import describe

    print("\nconstructor tree:")
    print(describe(t))
    return 0


def _print_program_shape(plan, loop) -> None:
    """The compiled shape of a plan's data movement: per materialized
    piece, the block-program kernel it compiled to and its index-array
    size; plus the dataloop nesting depth and fused-copy count."""
    from repro.core import blockprog
    from repro.plan.ops import Blocks

    rows = []
    fused = deferred = 0
    for i, op in enumerate(plan.ops):
        for j, piece in enumerate(getattr(op, "pieces", ())):
            tag = f"op{i}[{type(op).__name__}].piece{j}"
            blocks = piece.blocks
            if blocks is None:
                deferred += 1
                rows.append((tag, "deferred (streamed view walk)"))
            elif isinstance(blocks, Blocks) and blockprog.enabled():
                fused += 1
                prog = blockprog.program_for_blocks(blocks)
                rows.append((tag, prog.describe()))
            else:
                fused += 1
                rows.append(
                    (tag, f"tuples(k={blocks.count}, "
                          f"nbytes={blocks.nbytes})")
                )
    print("\ncompiled program shape:")
    print(f"  dataloop nesting depth: {loop.depth if loop else '-'}")
    print(f"  fused batched copies: {fused}  "
          f"(deferred/streamed pieces: {deferred})")
    if rows:
        print(format_table(["piece", "program"], rows))


def _cmd_plan_dump(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.dataloop import compile_dataloop, describe_dataloop
    from repro.fs import SimFileSystem
    from repro.io import File, MODE_CREATE, MODE_RDWR
    from repro.datatypes import BYTE
    from repro.mpi import run_spmd
    from repro.obs import metrics, text_summary, trace

    ft = _parse_type(args.filetype)
    out = {}
    # Scope the process-global counters (block programs, kernel paths)
    # to this dump, and trace the access so the span summary below shows
    # where the time went.
    metrics.reset()
    trace.TRACER.clear()
    prev_trace = trace.set_tracing(True)

    def worker(comm):
        fh = File.open(comm, SimFileSystem(), "/plan",
                       MODE_CREATE | MODE_RDWR, engine=args.engine,
                       info={"ind_wr_buffer_size": str(args.bufsize),
                             "ind_rd_buffer_size": str(args.bufsize)})
        fh.set_view(args.disp, BYTE, ft)
        buf = np.zeros(args.nbytes, dtype=np.uint8)
        mem = fh._mem(buf, None, None)
        engine = fh.engine
        if args.write:
            out["plan"] = engine.plan_write_independent(mem, args.offset)
        else:
            out["plan"] = engine.plan_read_independent(mem, args.offset)
        # Execute the access twice so the steady-state cache behavior
        # (plan LRU, compiled block programs, kernel paths) is visible.
        fh.write_at(args.offset, buf)
        for _ in range(2):
            if args.write:
                fh.write_at(args.offset, buf)
            else:
                fh.read_at(args.offset, buf)
        out["stats"] = engine.stats.snapshot()
        fh.close()

    try:
        run_spmd(1, worker)
    finally:
        trace.set_tracing(prev_trace)
    print(f"filetype: {args.filetype}")
    print("\ndataloop program:")
    loop = compile_dataloop(ft)
    print(describe_dataloop(loop))
    print("\nplan:")
    print(out["plan"].describe())
    _print_program_shape(out["plan"], loop)
    s = dict(out["stats"])
    # Block-program and kernel-path counters are process-global and live
    # in the metrics registry now (the engine snapshot only carries the
    # per-engine plan-cache counters).
    s.update(metrics.snapshot()["global"])
    shown = sorted(
        k for k in s
        if k.startswith(("plan_cache", "plan_replays", "blockprog_",
                         "kernel_path_", "coll_", "executed_rounds",
                         "peak_staging"))
    )
    print("\ncache and kernel-path counters "
          "(after planning + 1 priming write + 2 accesses):")
    print(format_table(["counter", "value"],
                       [(k, s[k]) for k in shown]))
    print("\ntrace summary (inclusive span times):")
    print(text_summary(limit=20))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import export_chrome_trace, text_summary, trace

    trace.TRACER.clear()
    prev = trace.set_tracing(True)
    try:
        r = run_btio(
            args.engine,
            BTIOConfig(cls=args.cls, nprocs=args.nprocs,
                       nsteps=args.nsteps),
            runtime=args.runtime,
        )
    finally:
        trace.set_tracing(prev)
    print(f"traced BTIO class {args.cls}, P={args.nprocs}, "
          f"nsteps={args.nsteps}, engine={args.engine} "
          f"(io {r.io_time.total:.3f} s)")
    print(text_summary(limit=args.limit))
    if args.critical_path or args.waits:
        from repro.obs import causal

        graph = causal.build_graph()
        if args.critical_path:
            print()
            print(causal.format_critical_path(graph.critical_path()))
        if args.waits:
            print()
            print(causal.format_waits(graph.wait_report()))
    if args.export:
        n = export_chrome_trace(args.export)
        print(f"\nwrote {n} spans across {len(trace.TRACER.ranks())} "
              f"rank tracks to {args.export} "
              "(load in Perfetto or chrome://tracing)")
        dropped = {r_: d for r_, d in trace.TRACER.dropped().items() if d}
        if dropped:
            lost = ", ".join(f"rank {r_}: {d}"
                             for r_, d in sorted(dropped.items()))
            print("warning: span ring wrapped — oldest spans were "
                  f"dropped ({lost}); the exported timeline is "
                  "truncated")
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    from repro.obs import flight

    flight.RECORDER.clear()
    r = run_btio(
        args.engine,
        BTIOConfig(cls=args.cls, nprocs=args.nprocs,
                   nsteps=args.nsteps),
        runtime=args.runtime,
    )
    out = flight.dump(args.out)
    rec = flight.last_record()
    last = max((int(v) for v in rec["last_rounds"].values()),
               default=-1)
    print(f"ran BTIO class {args.cls}, P={args.nprocs}, "
          f"engine={args.engine} (io {r.io_time.total:.3f} s)")
    print(f"wrote flight record to {out} "
          f"({len(rec['ranks'])} ranks, last completed round {last})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    from repro.server.soak import SoakConfig, run_soak

    root = None
    if args.mode == "proc":
        root = tempfile.mkdtemp(prefix="repro-serve-")
    cfg = SoakConfig(
        nclients=args.clients, nfiles=args.files,
        ntenants=args.tenants, rounds=args.rounds,
        req_bytes=args.req_bytes, workers=args.workers,
        worker_mode=args.mode, batching=not args.no_batching,
        fair=not args.no_admission, root=root,
    )
    res = run_soak(cfg)
    print(
        f"service soak: {args.clients} clients x {args.rounds} rounds "
        f"over {args.files} files, {args.tenants} tenants, "
        f"{args.workers} {args.mode} workers "
        f"({'batching' if cfg.batching else 'no batching'}, "
        f"{'admission' if cfg.fair else 'no admission'})"
    )
    rows = []
    for name, st in sorted(res.tenant_stats.items()):
        p50 = res.percentile(name, 0.50) * 1e3
        p99 = res.percentile(name, 0.99) * 1e3
        rows.append((
            name, st["completed"], st["failed"],
            st["rejected_queue_full"],
            fmt_bytes(st["bytes_written"] + st["bytes_read"]),
            f"{p50:.2f}", f"{p99:.2f}",
        ))
    print(format_table(
        ["tenant", "done", "failed", "rejected", "bytes",
         "p50 ms", "p99 ms"], rows,
    ))
    srv = res.server
    print(
        f"server: {srv['requests_executed']} requests in "
        f"{srv['file_accesses']} file accesses "
        f"({srv['batch_merged_requests']} rode merged batches), "
        f"{res.wall_seconds:.3f} s wall"
    )
    print("byte-identity vs serialized execution: "
          + ("OK" if res.ok else f"FAILED ({res.mismatches} bytes)"))
    return 0 if res.ok else 1


def _cmd_workloads(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import datatypes as dtypes
    from repro.bench.workloads import WORKLOADS, make_workload
    from repro.fs import SimFileSystem
    from repro.io import File, MODE_CREATE, MODE_RDWR
    from repro.mpi import run_spmd

    names = [args.only] if args.only else sorted(WORKLOADS)
    for name in names:
        if name not in WORKLOADS:
            raise SystemExit(
                f"unknown workload {name!r}; choose from "
                f"{sorted(WORKLOADS)}"
            )

    def run_once(name, engine):
        fs = SimFileSystem()
        box = {}

        def worker(comm):
            w = make_workload(name, comm.rank, comm.size)
            etype = dtypes.DOUBLE if w.filetype.size % 8 == 0 \
                else dtypes.BYTE
            fh = File.open(comm, fs, "/w", MODE_CREATE | MODE_RDWR,
                           engine=engine)
            fh.set_view(0, etype, w.filetype)
            buf = np.zeros(w.buffer_bytes, dtype=np.uint8)
            comm.barrier()
            if comm.rank == 0:
                box["t0"] = time.perf_counter()
            comm.barrier()
            fh.write_at_all(0, buf, w.count, w.memtype)
            comm.barrier()
            if comm.rank == 0:
                box["wall"] = time.perf_counter() - box["t0"]
            fh.close()

        run_spmd(args.nprocs, worker)
        return box["wall"]

    rows = []
    for name in names:
        med = {}
        for engine in ("list_based", "listless"):
            med[engine] = min(
                run_once(name, engine) for _ in range(args.repeats)
            )
        rows.append(
            (
                name,
                f"{med['list_based']*1e3:.1f}",
                f"{med['listless']*1e3:.1f}",
                f"{med['list_based'] / med['listless']:.1f}x",
            )
        )
    print(f"workloads (P={args.nprocs}, collective write):")
    print(format_table(
        ["workload", "list-based ms", "listless ms", "speedup"], rows
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Fast Parallel "
        "Non-Contiguous File Access' (SC'03)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    nc = sub.add_parser("noncontig", help="run the synthetic benchmark")
    nc.add_argument("--nprocs", type=int, default=2)
    nc.add_argument("--sblock", type=int, default=8)
    nc.add_argument("--nblock", type=int, default=1024)
    nc.add_argument("--pattern", choices=["c-nc", "nc-c", "nc-nc"],
                    default="nc-nc")
    nc.add_argument("--collective", action="store_true")
    nc.add_argument("--nreps", type=int, default=2)
    nc.add_argument("--repeats", type=int, default=3)
    nc.set_defaults(fn=_cmd_noncontig)

    bt = sub.add_parser("btio", help="run the BTIO kernel")
    bt.add_argument("--cls", choices=list("SWABCD"), default="W")
    bt.add_argument("-n", "--nprocs", type=int, default=4)
    bt.add_argument("--nsteps", type=int, default=3)
    bt.add_argument("--runtime", choices=["sim", "proc"], default=None,
                    help="execution backend: simulated rank threads or "
                    "real rank processes (default: REPRO_RUNTIME or sim)")
    bt.add_argument("--repeats", type=int, default=3)
    bt.add_argument("--verify", action="store_true")
    bt.add_argument("--report", choices=["time", "phases"],
                    default="time",
                    help="'phases' adds the per-phase decomposition "
                    "table (Table-3 style)")
    bt.set_defaults(fn=_cmd_btio)

    ch = sub.add_parser("characterize",
                        help="analytic BTIO characterization")
    ch.add_argument("--cls", choices=list("SWABCD"), default="B")
    ch.add_argument("--nprocs", type=int, default=4)
    ch.add_argument("--nsteps", type=int, default=40)
    ch.set_defaults(fn=_cmd_characterize)

    ins = sub.add_parser("inspect", help="describe a datatype expression")
    ins.add_argument("expr", help='e.g. "vector(1024, 1, 2, DOUBLE)"')
    ins.set_defaults(fn=_cmd_inspect)

    pd = sub.add_parser(
        "plan-dump",
        help="show the dataloop program and I/O plan for an access",
    )
    pd.add_argument("filetype", help='e.g. "vector(64, 8, 16, BYTE)"')
    pd.add_argument("--nbytes", type=int, default=256,
                    help="access size in data bytes")
    pd.add_argument("--offset", type=int, default=0,
                    help="starting data offset (etype units, etype=BYTE)")
    pd.add_argument("--disp", type=int, default=0, help="view displacement")
    pd.add_argument("--engine", choices=["listless", "list_based"],
                    default="listless")
    pd.add_argument("--write", action="store_true",
                    help="plan a write (default: read)")
    pd.add_argument("--bufsize", type=int, default=4 * 1024 * 1024,
                    help="independent sieving buffer size hint")
    pd.set_defaults(fn=_cmd_plan_dump)

    tr = sub.add_parser(
        "trace",
        help="trace a quick BT-IO run and export Chrome-trace JSON",
    )
    tr.add_argument("--cls", choices=list("SWABCD"), default="S")
    tr.add_argument("--nprocs", type=int, default=4)
    tr.add_argument("--nsteps", type=int, default=2)
    tr.add_argument("--engine", choices=["listless", "list_based"],
                    default="listless")
    tr.add_argument("--runtime", choices=["sim", "proc"], default=None,
                    help="execution backend (proc merges every rank "
                    "process' spans into the exported timeline)")
    tr.add_argument("--export", default=None, metavar="PATH",
                    help="write Chrome-trace/Perfetto JSON here")
    tr.add_argument("--limit", type=int, default=None,
                    help="rows in the text summary (default: all)")
    tr.add_argument("--critical-path", action="store_true",
                    dest="critical_path",
                    help="report the cross-rank critical path of the "
                    "traced run (repro.obs.causal)")
    tr.add_argument("--waits", action="store_true",
                    help="report per-rank wait attribution: who waited "
                    "on whom, stragglers, per-round exchange skew")
    tr.set_defaults(fn=_cmd_trace)

    fl = sub.add_parser(
        "flight",
        help="run a quick BT-IO and dump the flight recorder on demand",
    )
    fl.add_argument("--cls", choices=list("SWABCD"), default="S")
    fl.add_argument("--nprocs", type=int, default=4)
    fl.add_argument("--nsteps", type=int, default=2)
    fl.add_argument("--engine", choices=["listless", "list_based"],
                    default="listless")
    fl.add_argument("--runtime", choices=["sim", "proc"], default=None,
                    help="execution backend (proc merges the rank "
                    "processes' breadcrumbs into the record)")
    fl.add_argument("--out", default="flight_record.json", metavar="PATH",
                    help="destination file (a directory gets "
                    "flight_record.json inside)")
    fl.set_defaults(fn=_cmd_flight)

    sv = sub.add_parser(
        "serve",
        help="run the multi-tenant IOP service under a client soak",
    )
    sv.add_argument("--clients", type=int, default=64)
    sv.add_argument("--files", type=int, default=8)
    sv.add_argument("--tenants", type=int, default=4)
    sv.add_argument("--rounds", type=int, default=2,
                    help="write+read rounds per client")
    sv.add_argument("--req-bytes", type=int, default=4096,
                    dest="req_bytes")
    sv.add_argument("--workers", type=int, default=4)
    sv.add_argument("--mode", choices=["thread", "proc"],
                    default="thread",
                    help="worker pool: threads on the in-memory store, "
                    "or IOP processes on a real directory")
    sv.add_argument("--no-batching", action="store_true",
                    help="disable cross-client access merging")
    sv.add_argument("--no-admission", action="store_true",
                    help="disable budgets and fair dequeue (global "
                    "FIFO baseline)")
    sv.set_defaults(fn=_cmd_serve)

    wl = sub.add_parser(
        "workloads", help="compare engines across application workloads"
    )
    wl.add_argument("--nprocs", type=int, default=4)
    wl.add_argument(
        "--only", default=None,
        help="run a single workload family (default: all)",
    )
    wl.add_argument("--repeats", type=int, default=3)
    wl.set_defaults(fn=_cmd_workloads)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

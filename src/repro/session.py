"""Explicit I/O sessions: re-entrant, isolated copies of the core state.

Historically every piece of cross-cutting state in this stack was a
process-wide singleton: the kernel-path counters
(:data:`repro.core.gather.KERNEL_PATHS`), the block-program cache and
its counters (:mod:`repro.core.blockprog`), the metrics registry
(:data:`repro.obs.metrics.REGISTRY`) and the flight recorder
(:data:`repro.obs.flight.RECORDER`).  That is fine for one open file
driven by one SPMD world — and wrong the moment two client worlds or
two service tenants share a process: their counters absorb each other,
one world's ``set_view`` clears another's compiled programs, and a new
world wipes the previous world's flight record.

An :class:`IOSession` is one isolated copy of all of that.  Activating
a session (``with session:`` or ``with session.activate():``) binds it
to the calling context via a :class:`contextvars.ContextVar`
(:data:`repro._ctx.SESSION`); every layer resolves its state through
that variable with a single ``get`` on the hot path.  No active session
means the historical module-level singletons — existing code, tests and
benchmarks behave exactly as before.

Sessions are what make the multi-tenant service (:mod:`repro.server`)
possible: each tenant gets its own session, so per-tenant metric
snapshots, program caches and flight breadcrumbs never bleed across
tenants.  ``run_spmd(..., session=s)`` activates a session inside every
rank thread of a sim world, so two worlds can run concurrently in one
process without sharing observability state.
"""

from __future__ import annotations

from typing import Optional

from repro._ctx import SESSION

__all__ = ["IOSession", "current"]


class IOSession:
    """One isolated copy of the cross-cutting core/obs state.

    Components (all freshly constructed, never shared with the process
    defaults):

    ``metrics``
        a :class:`~repro.obs.metrics.MetricsRegistry` whose ``global``
        section reads *this session's* block-program and kernel-path
        counters;
    ``programs``
        a :class:`~repro.core.blockprog.ProgramCache` of compiled block
        programs;
    ``prog_stats`` / ``kernel_paths``
        the block-program and gather/scatter-kernel counters;
    ``flight``
        a :class:`~repro.obs.flight.FlightRecorder` of breadcrumbs.
    """

    def __init__(self, name: str = "session") -> None:
        # Imported here, not at module top: repro.session sits below the
        # core/obs layers in the import graph only because construction
        # is lazy.
        from repro.core.blockprog import ProgramCache, _Stats
        from repro.core.gather import _KernelPaths
        from repro.obs.flight import FlightRecorder
        from repro.obs.metrics import MetricsRegistry

        import threading

        self.name = str(name)
        self.kernel_paths = _KernelPaths()
        self.prog_stats = _Stats()
        self.programs = ProgramCache()
        self.flight = FlightRecorder(session=self)
        self.metrics = MetricsRegistry(session=self)
        # Activation tokens are context-bound: keep the stack per
        # thread so several worker threads can hold the same session
        # active at once without popping each other's tokens.
        self._tokens = threading.local()

    # ------------------------------------------------------------------
    def activate(self) -> "IOSession":
        """Bind this session to the calling context (re-entrant).

        Usable directly as a context manager::

            with session.activate():
                ...  # every layer resolves this session's state
        """
        stack = getattr(self._tokens, "stack", None)
        if stack is None:
            stack = self._tokens.stack = []
        stack.append(SESSION.set(self))
        return self

    def deactivate(self) -> None:
        """Undo the innermost :meth:`activate` of this thread."""
        stack = getattr(self._tokens, "stack", None)
        if stack:
            SESSION.reset(stack.pop())

    def __enter__(self) -> "IOSession":
        return self.activate()

    def __exit__(self, *exc) -> None:
        self.deactivate()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero this session's counters and drop its compiled programs
        (the session-scoped analogue of ``metrics.reset()``)."""
        self.metrics.reset()
        self.programs.clear()
        self.flight.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<IOSession {self.name!r}>"


def current() -> Optional[IOSession]:
    """The session active in the calling context, or ``None`` (meaning
    the process-wide default singletons are in effect)."""
    return SESSION.get(None)

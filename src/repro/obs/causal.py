"""Causal cross-rank analysis: critical path and wait attribution.

Per-rank phase buckets (:mod:`repro.obs.phases`) answer *how much* time
each rank spent per cost class, but collective I/O cost is dominated by
cross-rank structure — p2p-relaxed pipelined rounds, background pipeline
workers, idle ranks skipping rounds — where one rank's time is another
rank's wait.  This module merges the per-rank span/edge rings of a
:class:`~repro.obs.trace.Tracer` into a causal graph and computes:

* the **critical path** — the longest chain of *self* time (real work,
  never waiting) threading through the run via cross-rank edges; its
  length is the run's lower bound: no amount of extra overlap can beat
  it without making some rank's work faster;
* **wait attribution** — for every blocking event (recv, collective,
  pipeline drain), who the blocked rank was waiting *on*, aggregated
  into who-waited-on-whom matrices, a straggler ranking, and a split of
  each rank's wall time into *self time* vs *induced wait* (the
  cross-rank refinement of the paper's Table-3 decomposition).

The graph model (a PERT-style DAG over communication events):

* **nodes** — each rank's edge records (:class:`~repro.obs.trace.Edge`)
  in time order, plus a virtual source/sink;
* **program-order edges** — consecutive events on one rank, weighted by
  the self time between them (``max(0, next.t0 - prev.t1)``);
* **cross-rank edges** — matched by edge key: a send's completion
  releases the matching recv; a collective is released when its *last*
  participant arrives (that straggler is the cause for everyone else);
  a pipeline ``submit`` enables its ``complete`` with the job's
  measured seconds; a ``drain`` is released by the completion it
  waited for.

Every path accumulates disjoint, forward-in-time real intervals, so the
computed critical path is **≤ the measured wall time** by construction;
and each rank's own program-order chain is itself a candidate path whose
weight is exactly that rank's self time, so the critical path is **≥ the
max per-rank self time**.  Those two bounds are what the tier-1 tests
pin.

All inputs are already recorded — build the graph *after* a traced run::

    from repro.obs import causal
    g = causal.build_graph()           # from the process TRACER
    cp = g.critical_path()
    waits = g.wait_report()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import trace

__all__ = [
    "CausalGraph",
    "build_graph",
    "format_critical_path",
    "format_waits",
]

# p2p tags in [BASE, BASE + 2**20) are collective exchange rounds,
# tagged BASE + round by the aggregation layer (io/two_phase.py); the
# wait report uses this to fold p2p waits into per-round exchange skew.
_ROUND_TAG_BASE = 1 << 30
_ROUND_TAG_LIMIT = _ROUND_TAG_BASE + (1 << 20)


def _round_of_tag(tag: int) -> Optional[int]:
    if _ROUND_TAG_BASE <= tag < _ROUND_TAG_LIMIT:
        return tag - _ROUND_TAG_BASE
    return None


class _Node:
    """One communication event on one rank's timeline."""

    __slots__ = ("edge", "idx", "cause", "cause_t", "release", "wait",
                 "d_end", "pred")

    def __init__(self, edge: trace.Edge, idx: int) -> None:
        self.edge = edge
        self.idx = idx              # position in the rank's event list
        self.cause: Optional[_Node] = None   # remote event that released us
        self.cause_t = None         # when the cause arrived/completed
        self.release = edge.t0      # when we stopped waiting
        self.wait = 0.0             # seconds blocked on the cause
        self.d_end = 0.0            # longest-path distance at edge.t1
        self.pred: Optional[Tuple[str, "_Node"]] = None


class CausalGraph:
    """The merged cross-rank causal graph of one traced run."""

    def __init__(self, spans: List[trace.Span],
                 edges: List[trace.Edge]) -> None:
        self.spans = spans
        self.edges = edges
        # Rank extents: prefer the spmd.rank span; fall back to the
        # min/max stamp seen for the rank across spans and edges.
        lo: Dict[int, float] = {}
        hi: Dict[int, float] = {}
        for s in spans:
            if s.name == "spmd.rank":
                lo[s.rank] = min(lo.get(s.rank, s.t0), s.t0)
                hi[s.rank] = max(hi.get(s.rank, s.t1), s.t1)
        for e in edges:
            lo.setdefault(e.rank, e.t0)
            hi.setdefault(e.rank, e.t1)
            lo[e.rank] = min(lo[e.rank], e.t0)
            hi[e.rank] = max(hi[e.rank], e.t1)
        self.t_start = lo
        self.t_end = hi
        self.ranks = sorted(set(lo) | {e.rank for e in edges})
        self._nodes: Dict[int, List[_Node]] = {
            r: [] for r in self.ranks
        }
        by_rank: Dict[int, List[trace.Edge]] = {r: [] for r in self.ranks}
        for e in edges:
            by_rank[e.rank].append(e)
        for r, evs in by_rank.items():
            evs.sort(key=lambda e: (e.t1, e.t0, e.kind, str(e.key)))
            self._nodes[r] = [_Node(e, i) for i, e in enumerate(evs)]
        self._match()
        self._solve()

    # ------------------------------------------------------------------
    def _match(self) -> None:
        """Resolve each blocking node's cause via the edge keys."""
        sends: Dict[tuple, _Node] = {}
        submits: Dict[tuple, _Node] = {}
        completes: Dict[tuple, _Node] = {}
        colls: Dict[tuple, List[_Node]] = {}
        for r in self.ranks:
            for n in self._nodes[r]:
                k = n.edge.kind
                if k == "send":
                    sends[n.edge.key] = n
                elif k == "submit":
                    submits[n.edge.key] = n
                elif k == "complete":
                    completes[n.edge.key] = n
                elif k == "coll":
                    colls.setdefault(n.edge.key, []).append(n)
        self.unmatched = 0
        for r in self.ranks:
            for n in self._nodes[r]:
                e = n.edge
                if e.kind == "recv":
                    s = sends.get(e.key)
                    if s is None:
                        self.unmatched += 1
                        continue
                    n.cause = s
                    n.cause_t = s.edge.t1
                elif e.kind == "complete":
                    s = submits.get(e.key)
                    if s is not None:
                        n.cause = s
                        n.cause_t = s.edge.t1
                elif e.kind == "drain":
                    c = completes.get(e.key)
                    if c is not None:
                        n.cause = c
                        n.cause_t = c.edge.t1
        # A collective releases everyone when its last participant
        # arrives; that straggler is the cause for every other member.
        for key, members in colls.items():
            last = max(members, key=lambda n: n.edge.t0)
            for n in members:
                if n is not last:
                    n.cause = last
                    n.cause_t = last.edge.t0
        # Wait/release per node: blocked from t0 until the cause
        # arrived (clamped into the event's own interval).
        for r in self.ranks:
            for n in self._nodes[r]:
                if n.cause_t is not None:
                    n.release = min(n.edge.t1, max(n.edge.t0, n.cause_t))
                    n.wait = max(0.0, n.release - n.edge.t0)
                else:
                    n.release = n.edge.t0

    # ------------------------------------------------------------------
    def _d_arrival(self, n: _Node) -> float:
        """Longest-path distance at the node's start (program order)."""
        nodes = self._nodes[n.edge.rank]
        if n.idx == 0:
            return max(0.0, n.edge.t0 - self.t_start.get(n.edge.rank,
                                                         n.edge.t0))
        prev = nodes[n.idx - 1]
        return prev.d_end + max(0.0, n.edge.t0 - prev.edge.t1)

    def _solve(self) -> None:
        """Longest path over all nodes, processed in t1 order.

        For each node the distance at its end is the max of the
        program-order chain (self time since the previous event, then
        the post-release tail of this event) and the cross edge from
        its cause.  Causes always end (or arrive) no later than the
        node's own end, so t1 order is a topological order.
        """
        order = sorted(
            (n for r in self.ranks for n in self._nodes[r]),
            key=lambda n: (n.edge.t1, n.edge.rank, n.idx),
        )
        for n in order:
            d_prog = self._d_arrival(n)
            best, pred = d_prog, None
            if n.cause is not None:
                if n.cause.edge.kind == "coll":
                    d_cross = self._d_arrival(n.cause)
                else:
                    d_cross = n.cause.d_end
                if d_cross > best:
                    best, pred = d_cross, ("cross", n.cause)
            if pred is None and n.idx > 0:
                pred = ("prog", self._nodes[n.edge.rank][n.idx - 1])
            tail = max(0.0, n.edge.t1 - n.release)
            if n.cause is not None and n.cause.edge.kind == "submit":
                # complete nodes: the job's run time is real work on
                # the pipeline worker, chained after its submission.
                tail = max(tail, n.edge.t1 - n.edge.t0)
            n.d_end = best + tail
            n.pred = pred

    # ------------------------------------------------------------------
    def critical_path(self) -> dict:
        """The longest self-time chain through the run.

        Returns ``{"length", "wall", "per_rank_self", "segments"}`` —
        ``segments`` walks the winning chain source→sink as
        ``{"rank", "t0", "t1", "seconds", "via"}`` records.
        """
        wall, per_self = self._wall_and_self()
        best_d, best_n = 0.0, None
        for r in self.ranks:
            nodes = self._nodes[r]
            end = self.t_end.get(r, 0.0)
            if nodes:
                d = nodes[-1].d_end + max(0.0, end - nodes[-1].edge.t1)
            else:
                d = max(0.0, end - self.t_start.get(r, end))
            if d > best_d or best_n is None:
                best_d, best_n = d, nodes[-1] if nodes else None
        segments: List[dict] = []
        n = best_n
        if n is not None:
            segments.append({
                "rank": n.edge.rank, "t0": n.edge.t1,
                "t1": self.t_end.get(n.edge.rank, n.edge.t1),
                "seconds": max(0.0, self.t_end.get(n.edge.rank, n.edge.t1)
                               - n.edge.t1),
                "via": "tail",
            })
        while n is not None:
            segments.append({
                "rank": n.edge.rank, "t0": n.release, "t1": n.edge.t1,
                "seconds": max(0.0, n.edge.t1 - n.release),
                "via": f"{n.edge.kind}:{_key_label(n.edge)}",
            })
            if n.pred is None:
                segments.append({
                    "rank": n.edge.rank,
                    "t0": self.t_start.get(n.edge.rank, n.edge.t0),
                    "t1": n.edge.t0,
                    "seconds": max(0.0, n.edge.t0 -
                                   self.t_start.get(n.edge.rank,
                                                    n.edge.t0)),
                    "via": "head",
                })
                n = None
            else:
                how, p = n.pred
                if how == "prog":
                    segments.append({
                        "rank": n.edge.rank, "t0": p.edge.t1,
                        "t1": n.edge.t0,
                        "seconds": max(0.0, n.edge.t0 - p.edge.t1),
                        "via": "self",
                    })
                n = p
        segments.reverse()
        segments = [s for s in segments if s["seconds"] > 0.0]
        return {
            "length": best_d,
            "wall": wall,
            "per_rank_self": per_self,
            "max_self": max(per_self.values(), default=0.0),
            "segments": segments,
        }

    def _wall_and_self(self) -> Tuple[float, Dict[int, float]]:
        starts = [self.t_start[r] for r in self.ranks if r in self.t_start]
        ends = [self.t_end[r] for r in self.ranks if r in self.t_end]
        wall = (max(ends) - min(starts)) if starts and ends else 0.0
        per_self: Dict[int, float] = {}
        for r in self.ranks:
            span = max(0.0, self.t_end.get(r, 0.0) - self.t_start.get(r, 0.0))
            waited = sum(n.wait for n in self._nodes[r])
            per_self[r] = max(0.0, span - waited)
        return wall, per_self

    # ------------------------------------------------------------------
    def wait_report(self) -> dict:
        """Who waited on whom, and the self/induced-wait decomposition.

        Returns::

            {
              "per_rank": {rank: {"wall", "self", "wait", "by_peer",
                                  "by_class"}},
              "stragglers": [(rank, induced_seconds), ...]  # desc
              "rounds": {round: {"exchange_wait", "skew"}},
            }

        ``by_class`` splits each rank's wait into ``exchange`` (p2p
        round traffic), ``collective`` (barriers/alltoalls/allgathers),
        ``pipeline_stall`` (drains of this rank's own pipeline worker)
        and ``p2p`` (everything else).
        """
        wall, per_self = self._wall_and_self()
        per_rank: Dict[int, dict] = {}
        induced: Dict[int, float] = {r: 0.0 for r in self.ranks}
        rounds: Dict[int, dict] = {}
        for r in self.ranks:
            by_peer: Dict[int, float] = {}
            by_class = {"exchange": 0.0, "collective": 0.0,
                        "pipeline_stall": 0.0, "p2p": 0.0}
            total = 0.0
            for n in self._nodes[r]:
                if n.wait <= 0.0:
                    continue
                e = n.edge
                total += n.wait
                cls = "p2p"
                if e.kind == "drain":
                    cls = "pipeline_stall"
                elif e.kind == "coll" or (
                        n.cause is not None
                        and n.cause.edge.kind == "coll"):
                    cls = "collective"
                elif e.kind == "recv":
                    rnd = (_round_of_tag(e.key[2])
                           if len(e.key) >= 3 and isinstance(e.key[2], int)
                           else None)
                    if rnd is not None:
                        cls = "exchange"
                        row = rounds.setdefault(
                            rnd, {"exchange_wait": 0.0, "skew": 0.0})
                        row["exchange_wait"] += n.wait
                        row["skew"] = max(row["skew"], n.wait)
                by_class[cls] += n.wait
                if n.cause is not None:
                    blocker = n.cause.edge.rank
                    if blocker != r:
                        by_peer[blocker] = by_peer.get(blocker, 0.0) + n.wait
                        induced[blocker] = induced.get(blocker, 0.0) + n.wait
            per_rank[r] = {
                "wall": max(0.0, self.t_end.get(r, 0.0)
                            - self.t_start.get(r, 0.0)),
                "self": per_self[r],
                "wait": total,
                "by_peer": dict(sorted(by_peer.items())),
                "by_class": by_class,
            }
        stragglers = sorted(induced.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "wall": wall,
            "per_rank": per_rank,
            "stragglers": stragglers,
            "rounds": {k: rounds[k] for k in sorted(rounds)},
            "unmatched_edges": self.unmatched,
        }

    # ------------------------------------------------------------------
    def check_acyclic(self) -> bool:
        """Every cross edge must point forward in time (cause arrives
        no later than the effect completes) — which is what makes the
        t1-ordered longest-path pass a topological traversal.  Returns
        True when the invariant holds for every matched edge."""
        eps = 1e-9
        for r in self.ranks:
            for n in self._nodes[r]:
                if n.cause_t is not None and n.cause_t > n.edge.t1 + eps:
                    return False
                if n.idx > 0:
                    prev = self._nodes[r][n.idx - 1]
                    if prev.edge.t1 > n.edge.t1 + eps:
                        return False
        return True

    def structure(self) -> dict:
        """A timing-free fingerprint of the graph — per-rank event kind
        sequences and the set of matched keys — for determinism tests:
        two runs of the same program must produce the same structure
        even though every timestamp differs."""
        return {
            "events": {
                r: [(n.edge.kind, _key_label(n.edge))
                    for n in self._nodes[r]]
                for r in self.ranks
            },
            "matched": sorted(
                f"{n.edge.kind}:{_key_label(n.edge)}"
                for r in self.ranks for n in self._nodes[r]
                if n.cause is not None
            ),
        }


def _key_label(e: trace.Edge) -> str:
    return ",".join(str(p) for p in e.key)


def build_graph(tracer: Optional[trace.Tracer] = None) -> CausalGraph:
    """Build the causal graph from a tracer's recorded spans + edges
    (defaults to the process :data:`~repro.obs.trace.TRACER`)."""
    tr = tracer if tracer is not None else trace.TRACER
    return CausalGraph(tr.spans(), tr.edges())


# ----------------------------------------------------------------------
# CLI renderings
# ----------------------------------------------------------------------
def format_critical_path(cp: dict, limit: int = 24) -> str:
    """Human-readable critical-path report for ``repro trace``."""
    lines = [
        "critical path: {:.3f} ms  (wall {:.3f} ms, max per-rank self "
        "{:.3f} ms)".format(cp["length"] * 1e3, cp["wall"] * 1e3,
                            cp["max_self"] * 1e3),
    ]
    segs = cp["segments"]
    shown = segs if len(segs) <= limit else segs[-limit:]
    if shown is not segs:
        lines.append(f"  ... ({len(segs) - limit} earlier segments)")
    for s in shown:
        lines.append(
            "  rank {:<3d} {:>9.3f} ms  {}".format(
                s["rank"], s["seconds"] * 1e3, s["via"])
        )
    per_self = cp["per_rank_self"]
    lines.append("per-rank self time: " + "  ".join(
        f"r{r}={per_self[r] * 1e3:.3f}ms" for r in sorted(per_self)))
    return "\n".join(lines)


def format_waits(report: dict, limit: int = 8) -> str:
    """Human-readable wait-attribution report for ``repro trace``."""
    lines = ["wait attribution (self vs induced wait per rank):"]
    for r in sorted(report["per_rank"]):
        row = report["per_rank"][r]
        peers = ", ".join(
            f"on r{p}: {s * 1e3:.3f}ms"
            for p, s in list(row["by_peer"].items())[:limit]
        ) or "-"
        cls = row["by_class"]
        lines.append(
            "  rank {:<3d} wall {:>8.3f}ms  self {:>8.3f}ms  wait "
            "{:>8.3f}ms  [exch {:.3f} coll {:.3f} stall {:.3f}]  {}"
            .format(r, row["wall"] * 1e3, row["self"] * 1e3,
                    row["wait"] * 1e3, cls["exchange"] * 1e3,
                    cls["collective"] * 1e3,
                    cls["pipeline_stall"] * 1e3, peers)
        )
    stragglers = [kv for kv in report["stragglers"] if kv[1] > 0.0]
    if stragglers:
        lines.append("stragglers (wait induced on others):")
        for r, s in stragglers[:limit]:
            lines.append(f"  rank {r:<3d} {s * 1e3:>9.3f} ms")
    if report["rounds"]:
        lines.append("per-round exchange skew:")
        for rnd, row in list(report["rounds"].items())[:limit]:
            lines.append(
                "  round {:<3d} wait {:>8.3f} ms  skew {:>8.3f} ms"
                .format(rnd, row["exchange_wait"] * 1e3,
                        row["skew"] * 1e3)
            )
    if report.get("unmatched_edges"):
        lines.append(
            f"({report['unmatched_edges']} unmatched edges — ring "
            "overflow or a truncated trace)")
    return "\n".join(lines)

"""Low-overhead tracing: nestable spans in per-rank ring buffers.

The tracer answers the question the raw counters cannot: *where* did a
collective write spend its time?  Every instrumented layer — plan build,
copy kernels, file accesses, MPI exchanges — opens a :func:`span` around
its work; spans nest, carry free-form fields (``bytes=n``, ``rank=r``)
and land in a bounded per-rank ring buffer, so a long benchmark can
trace forever without growing memory.

Cost when off is the design constraint.  The module-level fast path::

    with trace.span("two_phase.exchange", bytes=n):
        ...

compiles to one global read and one shared no-op context manager when
tracing is disabled — no allocation, no ``perf_counter`` call, no ring
access (tested in ``tests/test_obs_trace.py``).  Hot paths that cannot
even afford a function call guard on the module attribute directly::

    if trace.TRACE_ON:
        t0 = trace.now()
        ...
        trace.add_span("ff.pack", t0, bytes=n)

Enabling: the ``REPRO_TRACE`` environment variable (any value but
``0``/``false``/``off``), :func:`set_tracing` at runtime, or the
``obs_trace`` open hint (``repro.io.hints``) which flips the process
switch when the file is opened.  ``REPRO_TRACE`` also accepts a comma
list of categories (``REPRO_TRACE=exec,fs``) — the prefix before the
first ``.`` of a span name — so hot-kernel categories can stay off
while round/exchange spans record; :func:`set_tracing` takes the same
via ``categories=``.  The filter state *is* the :data:`TRACE_ON`
global (``False`` / ``True`` / a frozenset of categories), so the off
path stays one global read.

Rank attribution: the SPMD harness names its threads ``rank-N``
(:mod:`repro.mpi.runtime`), and the tracer resolves the current rank
from the thread name (cached per thread).  Spans recorded outside any
rank thread land on rank 0.  Export formats live in
:mod:`repro.obs.export`; phase buckets (always-on accounting) in
:mod:`repro.obs.phases`.

Causal structure: every span carries a per-rank id (``sid``) and the
id of its enclosing span (``parent``), and the tracer additionally
keeps per-rank rings of :class:`Edge` records — cross-rank
happens-before stamps written at communication sites (send/recv pairs,
collectives, pipeline submit/complete).  :mod:`repro.obs.causal`
merges spans and edges into the causal graph behind ``repro trace
--critical-path`` / ``--waits``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "Edge",
    "Span",
    "Tracer",
    "TRACER",
    "add_edge",
    "add_span",
    "enabled",
    "now",
    "set_tracing",
    "span",
]

#: Spans kept per rank; older spans fall off the ring (a trace of the
#: steady state is what the overhead decomposition needs).
MAX_SPANS_PER_RANK = 1 << 16

now = time.perf_counter


_OFF_TOKENS = ("", "0", "false", "off", "no", "disable", "disabled")
_ON_TOKENS = ("1", "true", "on", "yes", "all", "enable", "enabled")


def _env_enabled():
    """Parse ``REPRO_TRACE``: a boolean token, or a comma list of
    categories (``exec,fs``) yielding a frozenset filter."""
    v = os.environ.get("REPRO_TRACE", "0").strip().lower()
    if v in _OFF_TOKENS:
        return False
    if v in _ON_TOKENS:
        return True
    cats = frozenset(c.strip() for c in v.split(",") if c.strip())
    return cats if cats else True


#: Module-level switch, read on every span() call.  Kept as a plain
#: global (not behind a function) so hot paths can guard on it directly.
#: Three states: ``False`` (off), ``True`` (record everything), or a
#: frozenset of category names (record only spans whose name prefix
#: before the first ``.`` is in the set).  Any truthy value keeps the
#: hot-path ``if trace.TRACE_ON`` guards live; the category filter is
#: applied where the span is recorded.
TRACE_ON = _env_enabled()


def enabled() -> bool:
    """Whether span recording is active process-wide."""
    return bool(TRACE_ON)


def set_tracing(flag=True, categories=None):
    """Enable/disable tracing at runtime; returns the previous setting.

    ``set_tracing(True, categories=("exec", "fs"))`` records only those
    categories.  The return value round-trips: ``set_tracing(prev)``
    restores whatever was active, including a category filter.
    """
    global TRACE_ON
    prev = TRACE_ON
    if categories is not None:
        cats = frozenset(categories)
        TRACE_ON = (cats or True) if flag else False
    elif isinstance(flag, str):
        TRACE_ON = (frozenset(c.strip() for c in flag.split(",") if c.strip())
                    or False)
    elif isinstance(flag, frozenset) or isinstance(flag, (set, list, tuple)):
        TRACE_ON = frozenset(flag) if flag else False
    else:
        TRACE_ON = bool(flag)
    return prev


def _category_off(name: str) -> bool:
    """Whether the active filter excludes this span name.  Only ever
    true when :data:`TRACE_ON` is a category set."""
    state = TRACE_ON
    return (type(state) is frozenset
            and name.split(".", 1)[0] not in state)


class Span:
    """One recorded span: name, rank, nesting depth, times, fields.

    ``t0``/``t1`` are ``perf_counter`` seconds relative to the tracer's
    epoch (set when the tracer is created or cleared), so exported
    timestamps start near zero.

    ``sid`` is the span's id — unique and monotonic per rank — and
    ``parent`` is the sid of the span lexically enclosing it on the
    same rank (-1 at top level), giving every trace an explicit call
    tree in addition to the depth field.
    """

    __slots__ = ("name", "rank", "depth", "t0", "t1", "args", "sid",
                 "parent")

    def __init__(self, name: str, rank: int, depth: int, t0: float,
                 t1: float, args: Optional[dict], sid: int = -1,
                 parent: int = -1) -> None:
        self.name = name
        self.rank = rank
        self.depth = depth
        self.t0 = t0
        self.t1 = t1
        self.args = args
        self.sid = sid
        self.parent = parent

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} rank={self.rank} sid={self.sid} "
            f"depth={self.depth} dur={self.duration * 1e6:.1f}us>"
        )


class Edge:
    """One cross-rank causality stamp, recorded at a communication
    site.  Both sides of a matched operation record an edge with the
    *same* ``key`` (a tuple both can compute locally — e.g. p2p
    ``(src, dst, tag, seq)`` from per-pair FIFO sequence counters, or
    collective ``(what, cid, n)`` from per-rank call counters), which
    is how :mod:`repro.obs.causal` pairs them up after the per-rank
    rings are merged.

    ``kind`` ∈ {``send``, ``recv``, ``coll``, ``submit``, ``complete``,
    ``drain``}.  ``peer`` is the other world rank for p2p, else -1.
    ``sid`` is the id of the span open on this rank when the edge was
    stamped (-1 if none), linking edges back into the span tree.
    ``t0``/``t1``: for waits (recv/coll/drain), t0 is when the rank
    started waiting and t1 when it was released; for sends/submits the
    two coincide at the stamp time.
    """

    __slots__ = ("kind", "key", "rank", "peer", "sid", "t0", "t1")

    def __init__(self, kind: str, key: tuple, rank: int, peer: int,
                 sid: int, t0: float, t1: float) -> None:
        self.kind = kind
        self.key = key
        self.rank = rank
        self.peer = peer
        self.sid = sid
        self.t0 = t0
        self.t1 = t1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Edge {self.kind} key={self.key!r} rank={self.rank} "
                f"peer={self.peer}>")


class _NoopSpan:
    """The shared do-nothing context manager returned when tracing is
    off.  A singleton: ``span(...)`` allocates nothing on the off path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()

_tls = threading.local()


def set_current_rank(rank: int) -> None:
    """Pin the calling thread's rank attribution to ``rank``.

    Rank resolution caches in a thread-local, and a forked worker
    process inherits the parent main thread's cache (fork copies
    thread-locals along with the rest of memory) — so a process-backed
    rank must overwrite the cache explicitly; renaming its thread to
    ``rank-N`` is not enough.  Also drops any span stack inherited
    from the parent: those spans belong to the parent's timeline.
    """
    _tls.rank = rank
    _tls.stack = []


def _current_rank() -> int:
    """Rank of the calling thread (cached), from the ``rank-N`` thread
    name the SPMD harness assigns; 0 outside any rank thread."""
    r = getattr(_tls, "rank", None)
    if r is None:
        name = threading.current_thread().name
        if name.startswith("rank-"):
            try:
                r = int(name[5:])
            except ValueError:
                r = 0
        else:
            r = 0
        _tls.rank = r
    return r


def _span_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _LiveSpan:
    """Context manager recording one span into its tracer on exit.

    On entry it draws a fresh per-rank span id and pushes it on the
    thread's live-span stack (the top of the stack is the parent of
    anything recorded while this span is open); on exit it pops and
    records.
    """

    __slots__ = ("tracer", "name", "rank", "args", "t0", "depth", "sid",
                 "parent")

    def __init__(self, tracer: "Tracer", name: str, rank: Optional[int],
                 args: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.rank = rank
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        depth = getattr(_tls, "depth", 0)
        self.depth = depth
        _tls.depth = depth + 1
        r = self.rank if self.rank is not None else _current_rank()
        self.rank = r
        stack = _span_stack()
        self.parent = stack[-1] if stack else -1
        self.sid = self.tracer._next_sid(r)
        stack.append(self.sid)
        self.t0 = now()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = now()
        _tls.depth = self.depth
        stack = _span_stack()
        if stack and stack[-1] == self.sid:
            stack.pop()
        self.tracer._record(self.name, self.rank, self.depth, self.t0,
                            t1, self.args, sid=self.sid,
                            parent=self.parent)
        return False


class Tracer:
    """Per-rank ring buffers of :class:`Span` and :class:`Edge` records."""

    def __init__(self, max_spans_per_rank: int = MAX_SPANS_PER_RANK) -> None:
        self.maxlen = max_spans_per_rank
        self._rings: Dict[int, deque] = {}
        self._edges: Dict[int, deque] = {}
        self._dropped: Dict[int, int] = {}
        self._edges_dropped: Dict[int, int] = {}
        self._sids: Dict[int, int] = {}
        self._seqs: Dict[tuple, int] = {}
        self._mu = threading.Lock()
        self.epoch = now()

    # ------------------------------------------------------------------
    def _ring(self, rank: int) -> deque:
        ring = self._rings.get(rank)
        if ring is None:
            with self._mu:
                ring = self._rings.setdefault(
                    rank, deque(maxlen=self.maxlen)
                )
        return ring

    def _edge_ring(self, rank: int) -> deque:
        ring = self._edges.get(rank)
        if ring is None:
            with self._mu:
                ring = self._edges.setdefault(
                    rank, deque(maxlen=self.maxlen)
                )
        return ring

    def _next_sid(self, rank: int) -> int:
        # Only the rank's own thread draws its ids, so the bare
        # read-increment is single-writer (the GIL covers the dict op).
        n = self._sids.get(rank, 0)
        self._sids[rank] = n + 1
        return n

    def seq(self, key: tuple) -> int:
        """Draw the next value of a named sequence counter.  Used by
        communication sites to build matchable edge keys: each side
        counts its own (pair, tag) stream, and FIFO delivery per
        (source, tag) makes the n-th send match the n-th receive."""
        n = self._seqs.get(key, 0)
        self._seqs[key] = n + 1
        return n

    def _record(self, name: str, rank: Optional[int], depth: int,
                t0: float, t1: float, args: Optional[dict],
                sid: int = -1, parent: int = -1) -> None:
        state = TRACE_ON
        if type(state) is frozenset and name.split(".", 1)[0] not in state:
            return
        r = _current_rank() if rank is None else rank
        if sid < 0:
            stack = getattr(_tls, "stack", None)
            parent = stack[-1] if stack else -1
            sid = self._next_sid(r)
        # deque.append is atomic; each rank thread appends to its own
        # ring, so no lock is needed on the record path.
        ring = self._ring(r)
        if len(ring) == self.maxlen:
            self._dropped[r] = self._dropped.get(r, 0) + 1
        ring.append(
            Span(name, r, depth, t0 - self.epoch, t1 - self.epoch, args,
                 sid=sid, parent=parent)
        )

    # ------------------------------------------------------------------
    def span(self, name: str, rank: Optional[int] = None,
             **args) -> _LiveSpan:
        """A context manager recording ``name`` around its body."""
        return _LiveSpan(self, name, rank, args or None)

    def add(self, name: str, t0: float, t1: Optional[float] = None,
            rank: Optional[int] = None, **args) -> None:
        """Record a finished span from explicit ``perf_counter`` stamps
        (the manual API for call-overhead-sensitive paths).

        This is ``_record`` inlined: hot kernels stamp one span per
        buffer-sized window, so the forwarding call and the repeated
        thread-local lookups it would cost are worth flattening away
        (the ``--trace-overhead`` CI gate holds the budget).
        """
        state = TRACE_ON
        if type(state) is frozenset and name.split(".", 1)[0] not in state:
            return
        if t1 is None:
            t1 = now()
        r = _current_rank() if rank is None else rank
        stack = getattr(_tls, "stack", None)
        sid = self._sids.get(r, 0)
        self._sids[r] = sid + 1
        ring = self._rings.get(r)
        if ring is None:
            ring = self._ring(r)
        elif len(ring) == self.maxlen:
            self._dropped[r] = self._dropped.get(r, 0) + 1
        e = self.epoch
        ring.append(
            Span(name, r, getattr(_tls, "depth", 0), t0 - e, t1 - e,
                 args or None, sid=sid,
                 parent=stack[-1] if stack else -1)
        )

    def edge(self, kind: str, key: tuple, peer: int = -1,
             t0: Optional[float] = None, t1: Optional[float] = None,
             rank: Optional[int] = None, sid: Optional[int] = None) -> None:
        """Record a cross-rank causality stamp (see :class:`Edge`)."""
        r = _current_rank() if rank is None else rank
        if t1 is None:
            t1 = now()
        if t0 is None:
            t0 = t1
        if sid is None:
            stack = getattr(_tls, "stack", None)
            sid = stack[-1] if stack else -1
        ring = self._edge_ring(r)
        if len(ring) == self.maxlen:
            self._edges_dropped[r] = self._edges_dropped.get(r, 0) + 1
        ring.append(Edge(kind, key, r, peer, sid, t0 - self.epoch,
                         t1 - self.epoch))

    # ------------------------------------------------------------------
    def spans(self, rank: Optional[int] = None) -> List[Span]:
        """Recorded spans — one rank's, or all ranks' in time order."""
        with self._mu:
            rings = ({rank: self._rings.get(rank, ())} if rank is not None
                     else dict(self._rings))
        out: List[Span] = []
        for r in sorted(rings):
            out.extend(rings[r])
        out.sort(key=lambda s: (s.t0, s.rank, s.depth))
        return out

    def edges(self, rank: Optional[int] = None) -> List[Edge]:
        """Recorded edges — one rank's, or all ranks' in time order."""
        with self._mu:
            rings = ({rank: self._edges.get(rank, ())} if rank is not None
                     else dict(self._edges))
        out: List[Edge] = []
        for r in sorted(rings):
            out.extend(rings[r])
        out.sort(key=lambda e: (e.t1, e.rank))
        return out

    def ranks(self) -> List[int]:
        with self._mu:
            return sorted(r for r, ring in self._rings.items() if ring)

    def dropped(self, rank: Optional[int] = None):
        """Spans that fell off a wrapped ring — per rank, or one rank's
        count.  Non-zero means the timeline is truncated."""
        with self._mu:
            if rank is not None:
                return self._dropped.get(rank, 0)
            return dict(self._dropped)

    def snapshot(self) -> dict:
        """Counts for dashboards/tests: spans and edges per rank plus
        the per-rank overflow (``spans_dropped`` / ``edges_dropped``)."""
        with self._mu:
            return {
                "spans": {r: len(ring) for r, ring in self._rings.items()},
                "edges": {r: len(ring) for r, ring in self._edges.items()},
                "spans_dropped": dict(self._dropped),
                "edges_dropped": dict(self._edges_dropped),
            }

    def clear(self) -> None:
        """Drop all spans/edges/counters and restart the epoch."""
        with self._mu:
            self._rings.clear()
            self._edges.clear()
            self._dropped.clear()
            self._edges_dropped.clear()
            self._sids.clear()
            self._seqs.clear()
            self.epoch = now()

    # ------------------------------------------------------------------
    # Cross-process merge (the proc SPMD backend ships each child's
    # spans back to the parent and ingests them here).
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Spans/edges as picklable tuples with *absolute*
        ``perf_counter`` stamps.  ``perf_counter`` is CLOCK_MONOTONIC
        on Linux — one clock across processes — so a tracer in another
        process can rebase them onto its own epoch and the merged
        timeline stays consistent."""
        with self._mu:
            rings = {r: list(ring) for r, ring in self._rings.items()}
            edges = {r: list(ring) for r, ring in self._edges.items()}
            dropped = dict(self._dropped)
        e = self.epoch
        return {
            "spans": {
                r: [
                    (s.name, s.rank, s.depth, s.t0 + e, s.t1 + e,
                     s.args, s.sid, s.parent)
                    for s in ring
                ]
                for r, ring in rings.items()
            },
            "edges": {
                r: [
                    (ed.kind, ed.key, ed.peer, ed.sid, ed.t0 + e,
                     ed.t1 + e)
                    for ed in ring
                ]
                for r, ring in edges.items()
            },
            "dropped": dropped,
        }

    def ingest_state(self, state: dict) -> int:
        """Merge spans/edges exported by another process' tracer;
        returns the number of spans absorbed."""
        n = 0
        e = self.epoch
        for r, spans in state.get("spans", {}).items():
            ring = self._ring(r)
            for name, rank, depth, t0, t1, args, sid, parent in spans:
                ring.append(Span(name, rank, depth, t0 - e, t1 - e,
                                 args, sid=sid, parent=parent))
                n += 1
        for r, edges in state.get("edges", {}).items():
            ring = self._edge_ring(r)
            for kind, key, peer, sid, t0, t1 in edges:
                ring.append(Edge(kind, key, r, peer, sid, t0 - e,
                                 t1 - e))
        for r, d in state.get("dropped", {}).items():
            if d:
                self._dropped[r] = self._dropped.get(r, 0) + d
        return n

    def __len__(self) -> int:
        with self._mu:
            return sum(len(r) for r in self._rings.values())


#: The process tracer every instrumented layer records into.
TRACER = Tracer()


def span(name: str, rank: Optional[int] = None, **args):
    """Record a span around the ``with`` body — or do nothing, cheaply.

    The off path returns a shared no-op context manager: no allocation,
    no clock read.  With a category filter active, filtered-out names
    take the same no-op path (one extra string split).
    """
    state = TRACE_ON
    if not state:
        return _NOOP
    if state is not True and name.split(".", 1)[0] not in state:
        return _NOOP
    return TRACER.span(name, rank=rank, **args)


def add_span(name: str, t0: float, t1: Optional[float] = None,
             rank: Optional[int] = None, **args) -> None:
    """Manual-stamp recording (no-op when tracing is off).

    Callers on clock-sensitive paths should guard the *start* stamp on
    :data:`TRACE_ON` themselves; this re-check covers toggles that race
    the call.  Category-filtered names are rejected here, before any
    tracer machinery runs — the hot-guard sites stay cheap when their
    category is excluded.
    """
    state = TRACE_ON
    if not state:
        return
    if state is not True and name.split(".", 1)[0] not in state:
        return
    TRACER.add(name, t0, t1, rank=rank, **args)


def add_edge(kind: str, key: tuple, peer: int = -1,
             t0: Optional[float] = None, t1: Optional[float] = None,
             rank: Optional[int] = None) -> None:
    """Record a cross-rank causality edge (no-op when tracing is off).

    Edges are *not* category-filtered: they are only stamped at
    communication sites (never in hot kernels) and the causal graph
    needs them even when span categories are narrowed.
    """
    if not TRACE_ON:
        return
    TRACER.edge(kind, key, peer=peer, t0=t0, t1=t1, rank=rank)

"""Low-overhead tracing: nestable spans in per-rank ring buffers.

The tracer answers the question the raw counters cannot: *where* did a
collective write spend its time?  Every instrumented layer — plan build,
copy kernels, file accesses, MPI exchanges — opens a :func:`span` around
its work; spans nest, carry free-form fields (``bytes=n``, ``rank=r``)
and land in a bounded per-rank ring buffer, so a long benchmark can
trace forever without growing memory.

Cost when off is the design constraint.  The module-level fast path::

    with trace.span("two_phase.exchange", bytes=n):
        ...

compiles to one global read and one shared no-op context manager when
tracing is disabled — no allocation, no ``perf_counter`` call, no ring
access (tested in ``tests/test_obs_trace.py``).  Hot paths that cannot
even afford a function call guard on the module attribute directly::

    if trace.TRACE_ON:
        t0 = trace.now()
        ...
        trace.add_span("ff.pack", t0, bytes=n)

Enabling: the ``REPRO_TRACE`` environment variable (any value but
``0``/``false``/``off``), :func:`set_tracing` at runtime, or the
``obs_trace`` open hint (``repro.io.hints``) which flips the process
switch when the file is opened.

Rank attribution: the SPMD harness names its threads ``rank-N``
(:mod:`repro.mpi.runtime`), and the tracer resolves the current rank
from the thread name (cached per thread).  Spans recorded outside any
rank thread land on rank 0.  Export formats live in
:mod:`repro.obs.export`; phase buckets (always-on accounting) in
:mod:`repro.obs.phases`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "add_span",
    "enabled",
    "now",
    "set_tracing",
    "span",
]

#: Spans kept per rank; older spans fall off the ring (a trace of the
#: steady state is what the overhead decomposition needs).
MAX_SPANS_PER_RANK = 1 << 16

now = time.perf_counter


def _env_enabled() -> bool:
    v = os.environ.get("REPRO_TRACE", "0").strip().lower()
    return v not in ("", "0", "false", "off", "no", "disable", "disabled")


#: Module-level switch, read on every span() call.  Kept as a plain
#: global (not behind a function) so hot paths can guard on it directly.
TRACE_ON = _env_enabled()


def enabled() -> bool:
    """Whether span recording is active process-wide."""
    return TRACE_ON


def set_tracing(flag: bool) -> bool:
    """Enable/disable tracing at runtime; returns the previous setting."""
    global TRACE_ON
    prev = TRACE_ON
    TRACE_ON = bool(flag)
    return prev


class Span:
    """One recorded span: name, rank, nesting depth, times, fields.

    ``t0``/``t1`` are ``perf_counter`` seconds relative to the tracer's
    epoch (set when the tracer is created or cleared), so exported
    timestamps start near zero.
    """

    __slots__ = ("name", "rank", "depth", "t0", "t1", "args")

    def __init__(self, name: str, rank: int, depth: int, t0: float,
                 t1: float, args: Optional[dict]) -> None:
        self.name = name
        self.rank = rank
        self.depth = depth
        self.t0 = t0
        self.t1 = t1
        self.args = args

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} rank={self.rank} depth={self.depth} "
            f"dur={self.duration * 1e6:.1f}us>"
        )


class _NoopSpan:
    """The shared do-nothing context manager returned when tracing is
    off.  A singleton: ``span(...)`` allocates nothing on the off path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()

_tls = threading.local()


def _current_rank() -> int:
    """Rank of the calling thread (cached), from the ``rank-N`` thread
    name the SPMD harness assigns; 0 outside any rank thread."""
    r = getattr(_tls, "rank", None)
    if r is None:
        name = threading.current_thread().name
        if name.startswith("rank-"):
            try:
                r = int(name[5:])
            except ValueError:
                r = 0
        else:
            r = 0
        _tls.rank = r
    return r


class _LiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("tracer", "name", "rank", "args", "t0", "depth")

    def __init__(self, tracer: "Tracer", name: str, rank: Optional[int],
                 args: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.rank = rank
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        stack = getattr(_tls, "depth", 0)
        self.depth = stack
        _tls.depth = stack + 1
        self.t0 = now()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = now()
        _tls.depth = self.depth
        self.tracer._record(self.name, self.rank, self.depth, self.t0,
                            t1, self.args)
        return False


class Tracer:
    """Per-rank ring buffers of :class:`Span` records."""

    def __init__(self, max_spans_per_rank: int = MAX_SPANS_PER_RANK) -> None:
        self.maxlen = max_spans_per_rank
        self._rings: Dict[int, deque] = {}
        self._mu = threading.Lock()
        self.epoch = now()

    # ------------------------------------------------------------------
    def _ring(self, rank: int) -> deque:
        ring = self._rings.get(rank)
        if ring is None:
            with self._mu:
                ring = self._rings.setdefault(
                    rank, deque(maxlen=self.maxlen)
                )
        return ring

    def _record(self, name: str, rank: Optional[int], depth: int,
                t0: float, t1: float, args: Optional[dict]) -> None:
        r = _current_rank() if rank is None else rank
        # deque.append is atomic; each rank thread appends to its own
        # ring, so no lock is needed on the record path.
        self._ring(r).append(
            Span(name, r, depth, t0 - self.epoch, t1 - self.epoch, args)
        )

    # ------------------------------------------------------------------
    def span(self, name: str, rank: Optional[int] = None,
             **args) -> _LiveSpan:
        """A context manager recording ``name`` around its body."""
        return _LiveSpan(self, name, rank, args or None)

    def add(self, name: str, t0: float, t1: Optional[float] = None,
            rank: Optional[int] = None, **args) -> None:
        """Record a finished span from explicit ``perf_counter`` stamps
        (the manual API for call-overhead-sensitive paths)."""
        self._record(name, rank, getattr(_tls, "depth", 0), t0,
                     t1 if t1 is not None else now(), args or None)

    # ------------------------------------------------------------------
    def spans(self, rank: Optional[int] = None) -> List[Span]:
        """Recorded spans — one rank's, or all ranks' in time order."""
        with self._mu:
            rings = ({rank: self._rings.get(rank, ())} if rank is not None
                     else dict(self._rings))
        out: List[Span] = []
        for r in sorted(rings):
            out.extend(rings[r])
        out.sort(key=lambda s: (s.t0, s.rank, s.depth))
        return out

    def ranks(self) -> List[int]:
        with self._mu:
            return sorted(r for r, ring in self._rings.items() if ring)

    def clear(self) -> None:
        """Drop all spans and restart the epoch."""
        with self._mu:
            self._rings.clear()
            self.epoch = now()

    # ------------------------------------------------------------------
    # Cross-process merge (the proc SPMD backend ships each child's
    # spans back to the parent and ingests them here).
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[int, list]:
        """Spans as picklable tuples with *absolute* ``perf_counter``
        stamps.  ``perf_counter`` is CLOCK_MONOTONIC on Linux — one
        clock across processes — so a tracer in another process can
        rebase them onto its own epoch and the merged timeline stays
        consistent."""
        with self._mu:
            rings = {r: list(ring) for r, ring in self._rings.items()}
        return {
            r: [
                (s.name, s.rank, s.depth, s.t0 + self.epoch,
                 s.t1 + self.epoch, s.args)
                for s in ring
            ]
            for r, ring in rings.items()
        }

    def ingest_state(self, state: Dict[int, list]) -> int:
        """Merge spans exported by another process' tracer; returns the
        number of spans absorbed."""
        n = 0
        for r, spans in state.items():
            ring = self._ring(r)
            for name, rank, depth, t0, t1, args in spans:
                ring.append(Span(name, rank, depth, t0 - self.epoch,
                                 t1 - self.epoch, args))
                n += 1
        return n

    def __len__(self) -> int:
        with self._mu:
            return sum(len(r) for r in self._rings.values())


#: The process tracer every instrumented layer records into.
TRACER = Tracer()


def span(name: str, rank: Optional[int] = None, **args):
    """Record a span around the ``with`` body — or do nothing, cheaply.

    The off path returns a shared no-op context manager: no allocation,
    no clock read.
    """
    if not TRACE_ON:
        return _NOOP
    return TRACER.span(name, rank=rank, **args)


def add_span(name: str, t0: float, t1: Optional[float] = None,
             rank: Optional[int] = None, **args) -> None:
    """Manual-stamp recording (no-op when tracing is off).

    Callers on clock-sensitive paths should guard the *start* stamp on
    :data:`TRACE_ON` themselves; this re-check covers toggles that race
    the call.
    """
    if not TRACE_ON:
        return
    TRACER.add(name, t0, t1, rank=rank, **args)

"""Per-phase time accounting — the paper's overhead decomposition.

§2.4 of the paper itemizes where a non-contiguous access spends its
time (flattening, list building, navigation, copying) and Table 3
reports BT-IO time split by phase.  This module provides the always-on
accounting that makes the same decomposition available here: every
access accumulates wall seconds into a small fixed set of buckets, one
:class:`PhaseAccumulator` per (rank, open file), surfaced through engine
stats, ``repro btio --report phases`` and the benchmark JSON records.

Buckets (see ``docs/observability.md`` for the mapping to paper terms):

``plan``
    building the access' :class:`~repro.plan.plan.IOPlan` — navigation,
    window clipping, block materialization, plus the list-based engine's
    per-access schedule derivation (its §2.1 list building shows here);
``pack`` / ``unpack``
    memory-side gather/scatter ops (user buffer ↔ staging);
``file_io``
    executed file read/write ops, including the staging ↔ file-buffer
    copies performed inside windowed ops (the paper's copy + I/O cost);
``exchange``
    two-phase alltoall exchanges (data and, for the list-based engine,
    the shipped ol-lists);
``lock``
    acquiring byte-range locks for read-modify-write windows;
``sync``
    collective coordination: the access-range allgather that starts
    every collective access (includes waiting for slower ranks);
``ship``
    shipped noncontiguous requests against a sharded multi-server
    backend (``repro.plan.ops.ShipOp``): building per-shard wire
    descriptions, the round trips to the shard servers, and the
    payload scatter/gather on the client side (``docs/shipping.md``);
``pipeline_io``
    file work executed by the pipeline worker on behalf of this rank
    (jobs offloaded by pipelined collective rounds).  On the simulated
    executor the jobs run inline during drains, so their seconds are
    *moved* here out of ``file_io``; on the POSIX executor they run on
    a background thread and genuinely overlap the other buckets, so the
    per-rank sum of buckets can only be bounded by wall time plus the
    worker's concurrent window (see ``docs/observability.md``).

Unlike tracing (:mod:`repro.obs.trace`), phase accounting is never
switched off — it costs two ``perf_counter`` reads per executed op,
which is noise next to the op itself, and the decomposition must always
be available to benchmarks.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "BUCKETS",
    "PhaseAccumulator",
    "RoundLog",
    "format_phase_table",
    "merge_snapshots",
]

#: Bucket names in report order (the order Table-3-style output uses;
#: snapshots are keyed ``phase_<bucket>`` and sorted alphabetically).
BUCKETS: Tuple[str, ...] = (
    "plan", "pack", "unpack", "file_io", "pipeline_io", "exchange",
    "lock", "sync", "ship",
)

_now = time.perf_counter


class PhaseAccumulator:
    """Seconds per phase bucket for one (rank, open file).

    Written only by the owning rank's thread, so unsynchronized float
    adds are safe.  ``add`` takes the bucket name; mistyped buckets
    raise (silent new buckets would corrupt the fixed schema).
    """

    __slots__ = BUCKETS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for b in BUCKETS:
            setattr(self, b, 0.0)

    def add(self, bucket: str, seconds: float) -> None:
        setattr(self, bucket, getattr(self, bucket) + seconds)

    def timed(self, bucket: str):
        """Context manager accumulating its body's wall time."""
        return _PhaseTimer(self, bucket)

    @property
    def total(self) -> float:
        return sum(getattr(self, b) for b in BUCKETS)

    def snapshot(self) -> Dict[str, float]:
        """``{"phase_<bucket>": seconds}`` with deterministic key order."""
        return {f"phase_{b}": getattr(self, b) for b in sorted(BUCKETS)}

    def merge(self, other: "PhaseAccumulator") -> None:
        for b in BUCKETS:
            setattr(self, b, getattr(self, b) + getattr(other, b))

    @classmethod
    def sum(cls, accs: Iterable["PhaseAccumulator"]) -> "PhaseAccumulator":
        out = cls()
        for acc in accs:
            out.merge(acc)
        return out

    @classmethod
    def from_snapshot(cls, snap: Dict[str, float]) -> "PhaseAccumulator":
        """Rebuild an accumulator from a ``snapshot()`` dict (accepts
        ``phase_<bucket>`` or bare bucket keys) — how phase buckets
        collected in child rank processes rejoin the parent."""
        out = cls()
        for b in BUCKETS:
            out.add(b, snap.get(f"phase_{b}", snap.get(b, 0.0)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{b}={getattr(self, b) * 1e3:.2f}ms" for b in BUCKETS
        )
        return f"<PhaseAccumulator {parts}>"


class RoundLog:
    """Per-round ``exchange``/``file_io`` decomposition of collectives.

    Each executed aggregation round (:class:`~repro.plan.ops.RoundOp`
    span) appends one record ``{"index", "total", "wall", "exchange",
    "file_io", "file_io_async"}``; one log per (rank, open file),
    surfaced next to the phase buckets so Table-3-style reports can show
    how the pipeline interleaves exchange with file access round by
    round.  ``file_io_async`` is the round's file time spent on the
    executor's background worker, overlapped with later rounds' pack/
    exchange — it is back-filled when the offloaded op completes, so the
    row returned by :meth:`add` stays live until the plan run drains.
    """

    __slots__ = ("rounds",)

    def __init__(self) -> None:
        self.rounds: List[Dict[str, float]] = []

    def add(self, index: int, total: int, wall: float,
            exchange: float, file_io: float,
            file_io_async: float = 0.0) -> Dict[str, float]:
        row = {
            "index": index, "total": total, "wall": wall,
            "exchange": exchange, "file_io": file_io,
            "file_io_async": file_io_async,
        }
        self.rounds.append(row)
        return row

    def snapshot(self) -> List[Dict[str, float]]:
        return [dict(r) for r in self.rounds]

    def reset(self) -> None:
        self.rounds.clear()

    def __len__(self) -> int:
        return len(self.rounds)

    @staticmethod
    def merge_by_index(
        logs: Iterable[List[Dict[str, float]]]
    ) -> List[Dict[str, float]]:
        """Combine per-rank round records into one row per round index:
        seconds are summed across ranks (per-phase work), ``total``
        takes the max (ranks agree inside one collective; across a run
        the longest schedule wins)."""
        by_index: Dict[int, Dict[str, float]] = {}
        for log in logs:
            for r in log:
                row = by_index.setdefault(
                    int(r["index"]),
                    {"index": int(r["index"]), "total": 0,
                     "wall": 0.0, "exchange": 0.0, "file_io": 0.0,
                     "file_io_async": 0.0},
                )
                row["total"] = max(row["total"], int(r["total"]))
                for k in ("wall", "exchange", "file_io", "file_io_async"):
                    row[k] += float(r.get(k, 0.0))
        return [by_index[i] for i in sorted(by_index)]


def merge_snapshots(snaps: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Sum ``snapshot()`` dicts bucket-wise (per-rank rows → run total)."""
    return PhaseAccumulator.sum(
        PhaseAccumulator.from_snapshot(s) for s in snaps
    ).snapshot()


class _PhaseTimer:
    __slots__ = ("acc", "bucket", "t0")

    def __init__(self, acc: PhaseAccumulator, bucket: str) -> None:
        self.acc = acc
        self.bucket = bucket

    def __enter__(self) -> "_PhaseTimer":
        self.t0 = _now()
        return self

    def __exit__(self, *exc) -> bool:
        self.acc.add(self.bucket, _now() - self.t0)
        return False


def format_phase_table(
    columns: List[Tuple[str, Dict[str, float]]],
    unit: float = 1e3,
    unit_name: str = "ms",
    totals: Optional[Dict[str, float]] = None,
) -> str:
    """Render per-phase breakdowns side by side (Table-3 style).

    ``columns`` maps column titles to ``phase_<bucket>``-keyed (or bare
    bucket-keyed) snapshots; a ``total`` row and per-bucket percentage
    follow automatically.  ``totals`` overrides the denominators (e.g.
    measured wall time) — by default each column's bucket sum is used.
    """
    from repro.bench.reporting import format_table

    def get(snap: Dict[str, float], bucket: str) -> float:
        return snap.get(f"phase_{bucket}", snap.get(bucket, 0.0))

    headers = ["phase"]
    for title, _snap in columns:
        headers += [f"{title} [{unit_name}]", "%"]
    denom = {}
    for title, snap in columns:
        d = (totals or {}).get(title)
        if d is None:
            d = sum(get(snap, b) for b in BUCKETS)
        denom[title] = d if d > 0 else 1.0
    rows = []
    for b in BUCKETS:
        row = [b]
        for title, snap in columns:
            v = get(snap, b)
            row += [f"{v * unit:.3f}", f"{100 * v / denom[title]:5.1f}"]
        rows.append(tuple(row))
    total_row = ["total"]
    for title, snap in columns:
        v = sum(get(snap, b) for b in BUCKETS)
        total_row += [f"{v * unit:.3f}", f"{100 * v / denom[title]:5.1f}"]
    rows.append(tuple(total_row))
    return format_table(headers, rows)

"""Trace exporters: Chrome-trace/Perfetto JSON and a text summary.

``chrome_trace`` turns the tracer's per-rank rings into the Chrome Trace
Event format (the JSON Perfetto and ``chrome://tracing`` load): one
track per simulated rank (``pid`` 0, ``tid`` = rank, named via ``"M"``
metadata events), spans as ``"ph": "X"`` complete events with
microsecond timestamps relative to the tracer epoch.  Matched
cross-rank edge pairs (p2p send/recv — see :class:`repro.obs.trace.
Edge`) additionally emit Perfetto *flow* events (``"ph": "s"``/``"f"``)
so the UI draws an arrow from each send to the rank it released.
``text_summary`` aggregates spans by name into a flamegraph-ish table —
inclusive total, count, mean — for terminals and ``plan-dump``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.trace import TRACER, Tracer

__all__ = ["chrome_trace", "export_chrome_trace", "text_summary"]


def _flow_events(tr: Tracer) -> List[dict]:
    """Perfetto flow pairs for matched send/recv edges.

    Each matched key emits a ``"s"`` (flow start) at the send stamp on
    the sender's track and a ``"f"`` (flow finish, binding enclosing —
    ``"bp": "e"``) at the receive release on the receiver's track.
    Flow ids are assigned in sorted-key order, so the export is
    deterministic for a given trace.
    """
    sends: Dict[tuple, object] = {}
    recvs: Dict[tuple, object] = {}
    for e in tr.edges():
        if e.kind == "send" and e.key not in sends:
            sends[e.key] = e
        elif e.kind == "recv" and e.key not in recvs:
            recvs[e.key] = e
    events: List[dict] = []
    fid = 0
    for key in sorted(k for k in sends if k in recvs):
        s, r = sends[key], recvs[key]
        fid += 1
        events.append({
            "ph": "s", "pid": 0, "tid": s.rank, "name": "msg",
            "cat": "flow", "id": fid, "ts": s.t1 * 1e6,
        })
        events.append({
            "ph": "f", "pid": 0, "tid": r.rank, "name": "msg",
            "cat": "flow", "id": fid, "ts": r.t1 * 1e6, "bp": "e",
        })
    return events


def chrome_trace(tracer: Optional[Tracer] = None) -> dict:
    """The tracer's spans as a Chrome Trace Event JSON object."""
    tr = TRACER if tracer is None else tracer
    events: List[dict] = []
    for rank in tr.ranks():
        events.append({
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "name": "thread_name",
            "args": {"name": f"rank {rank}"},
        })
        # sort_index keeps rank order stable in the Perfetto track list.
        events.append({
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "name": "thread_sort_index",
            "args": {"sort_index": rank},
        })
    for s in tr.spans():
        ev = {
            "ph": "X",
            "pid": 0,
            "tid": s.rank,
            "name": s.name,
            "ts": s.t0 * 1e6,
            "dur": max(s.duration, 0.0) * 1e6,
            "cat": s.name.split(".", 1)[0],
        }
        if s.args:
            ev["args"] = {k: s.args[k] for k in sorted(s.args)}
        events.append(ev)
    events.extend(_flow_events(tr))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the span count."""
    doc = chrome_trace(tracer)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return sum(1 for ev in doc["traceEvents"] if ev["ph"] == "X")


def text_summary(tracer: Optional[Tracer] = None,
                 limit: Optional[int] = None) -> str:
    """Spans aggregated by name: count, inclusive total, mean — sorted
    by total descending (name breaks ties, for determinism)."""
    tr = TRACER if tracer is None else tracer
    agg: Dict[str, List[float]] = {}
    for s in tr.spans():
        ent = agg.get(s.name)
        if ent is None:
            agg[s.name] = [1, s.duration]
        else:
            ent[0] += 1
            ent[1] += s.duration
    if not agg:
        return "(no spans recorded — enable tracing with REPRO_TRACE=1,"\
               " set_tracing(True) or the obs_trace hint)"
    rows = sorted(agg.items(), key=lambda kv: (-kv[1][1], kv[0]))
    if limit is not None:
        rows = rows[:limit]
    from repro.bench.reporting import format_table

    body = [
        (name, str(int(cnt)), f"{tot * 1e3:.3f}",
         f"{tot / cnt * 1e6:.1f}")
        for name, (cnt, tot) in rows
    ]
    return format_table(
        ["span", "count", "total [ms]", "mean [us]"], body
    )

"""Unified metrics: one labeled surface over every stats struct.

The counters quantifying the paper's overheads live in four unrelated
places — :class:`~repro.io.engines.base.EngineStats` (per engine
instance), :class:`~repro.plan.stats.PlanStats` (nested inside it),
:class:`~repro.fs.stats.FileStats` (per simulated file), and the
process-global block-program / kernel-path counters in
:mod:`repro.core.blockprog` and :mod:`repro.core.gather`.  The
:class:`MetricsRegistry` absorbs them all as *labeled* metrics:

* ``engines`` — one entry per registered engine, labeled
  ``(path, engine, rank)``, carrying the engine's counter snapshot plus
  its ``phase_*`` buckets;
* ``files`` — one entry per simulated file, labeled by path, carrying
  its :class:`FileStats` snapshot;
* ``global`` — the process-wide block-program and kernel-path counters,
  reported **once** (they used to be merged into every per-engine
  snapshot, so two open files double-reported and per-engine reset
  could not clear them — that scoping bug is fixed by homing them here).

Registration is by weak reference: an engine closed with its file, or a
simulated file dropped with its filesystem, silently leaves the registry
— no unregister calls threaded through close paths, no leak when a test
opens hundreds of files.

``snapshot()`` output is deterministic (entries sorted by label, counter
keys sorted) so snapshots diff cleanly in tests and CI artifacts, and
``metric_schema()`` reduces a snapshot to its key structure for the
golden-schema drift check (``benchmarks/check_metrics_schema.py``).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "register_engine",
    "register_file",
    "snapshot",
    "reset",
    "metric_schema",
]


def _global_counters() -> Dict[str, int]:
    """The process-wide counters, reported once per snapshot."""
    from repro.core.blockprog import blockprog_stats
    from repro.core.gather import kernel_path_counts

    out = dict(blockprog_stats())
    out.update(kernel_path_counts())
    return dict(sorted(out.items()))


class MetricsRegistry:
    """Weak registry of stats producers with one snapshot/reset surface."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        # label -> weakref to the stats-bearing object.  Engine labels are
        # (path, engine_name, rank); file labels are (path,).
        self._engines: Dict[Tuple[str, str, int], weakref.ref] = {}
        self._files: Dict[str, weakref.ref] = {}

    # ------------------------------------------------------------------
    # Registration (weak; dead entries pruned on snapshot)
    # ------------------------------------------------------------------
    def register_engine(self, engine) -> None:
        """Register an engine instance under (path, engine, rank)."""
        fh = engine.fh
        label = (str(fh.shared.path), engine.name, int(fh.comm.rank))
        with self._mu:
            self._engines[label] = weakref.ref(engine)

    def register_file(self, path: str, stats) -> None:
        """Register a file's :class:`FileStats` under its path."""
        with self._mu:
            self._files[str(path)] = weakref.ref(stats)

    def _live(self):
        """(engine entries, file entries) with dead weakrefs pruned."""
        with self._mu:
            engines, dead = [], []
            for label, ref in self._engines.items():
                obj = ref()
                if obj is None:
                    dead.append(label)
                else:
                    engines.append((label, obj))
            for label in dead:
                del self._engines[label]
            files, dead = [], []
            for path, ref in self._files.items():
                obj = ref()
                if obj is None:
                    dead.append(path)
                else:
                    files.append((path, obj))
            for path in dead:
                del self._files[path]
        return engines, files

    # ------------------------------------------------------------------
    # The unified surface
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every live metric, deterministically ordered.

        ``{"engines": [...], "files": [...], "global": {...}}`` where each
        engine entry is ``{"path", "engine", "rank", "counters",
        "phases"}`` and each file entry ``{"path", "counters"}``.
        """
        engines, files = self._live()
        eng_out: List[dict] = []
        for (path, name, rank), eng in sorted(engines, key=lambda e: e[0]):
            eng_out.append({
                "path": path,
                "engine": name,
                "rank": rank,
                "counters": dict(sorted(eng.stats.snapshot().items())),
                "phases": eng.stats.phases.snapshot(),
            })
        file_out: List[dict] = []
        for path, st in sorted(files, key=lambda f: f[0]):
            file_out.append({
                "path": path,
                "counters": dict(sorted(st.snapshot().items())),
            })
        return {
            "engines": eng_out,
            "files": file_out,
            "global": _global_counters(),
        }

    def reset(self) -> None:
        """Zero every live registered stats object *and* the process-wide
        counters (the reset that the old per-engine merge never did)."""
        from repro.core.blockprog import BLOCKPROG_STATS
        from repro.core.gather import KERNEL_PATHS

        engines, files = self._live()
        for _label, eng in engines:
            st = eng.stats
            for f in (
                "list_tuples_built", "list_tuples_sent",
                "list_tuples_merged", "list_scans", "ff_navigations",
                "ff_kernel_calls", "ff_view_bytes_exchanged",
                "coll_rounds", "coll_domain_skew",
            ):
                setattr(st, f, 0)
            st.plan.__init__()
            st.phases.reset()
            st.rounds.reset()
        for _path, st in files:
            st.reset()
        BLOCKPROG_STATS.reset()
        KERNEL_PATHS.reset()

    def clear(self) -> None:
        """Forget all registrations (process-wide counters untouched)."""
        with self._mu:
            self._engines.clear()
            self._files.clear()


def metric_schema(snap: Optional[dict] = None) -> dict:
    """Reduce a snapshot to its key structure for drift checks.

    Engine schemas are keyed by engine name (labels vary run to run; the
    counter/phase key sets must not), file counter keys are unioned, and
    the global key list is taken verbatim.
    """
    if snap is None:
        snap = REGISTRY.snapshot()
    engines: Dict[str, dict] = {}
    for e in snap["engines"]:
        engines[e["engine"]] = {
            "counters": sorted(e["counters"]),
            "phases": sorted(e["phases"]),
        }
    file_keys: set = set()
    for f in snap["files"]:
        file_keys.update(f["counters"])
    return {
        "engines": {k: engines[k] for k in sorted(engines)},
        "file_counters": sorted(file_keys),
        "global": sorted(snap["global"]),
    }


#: The process registry every open file's engine registers into.
REGISTRY = MetricsRegistry()


def register_engine(engine) -> None:
    REGISTRY.register_engine(engine)


def register_file(path: str, stats) -> None:
    REGISTRY.register_file(path, stats)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()

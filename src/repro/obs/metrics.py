"""Unified metrics: one labeled surface over every stats struct.

The counters quantifying the paper's overheads live in four unrelated
places — :class:`~repro.io.engines.base.EngineStats` (per engine
instance), :class:`~repro.plan.stats.PlanStats` (nested inside it),
:class:`~repro.fs.stats.FileStats` (per simulated file), and the
process-global block-program / kernel-path counters in
:mod:`repro.core.blockprog` and :mod:`repro.core.gather`.  The
:class:`MetricsRegistry` absorbs them all as *labeled* metrics:

* ``engines`` — one entry per registered engine, labeled
  ``(path, engine, rank)``, carrying the engine's counter snapshot plus
  its ``phase_*`` buckets;
* ``files`` — one entry per simulated file, labeled by path, carrying
  its :class:`FileStats` snapshot;
* ``global`` — the process-wide block-program and kernel-path counters,
  reported **once** (they used to be merged into every per-engine
  snapshot, so two open files double-reported and per-engine reset
  could not clear them — that scoping bug is fixed by homing them here).

Registration is by weak reference: an engine closed with its file, or a
simulated file dropped with its filesystem, silently leaves the registry
— no unregister calls threaded through close paths, no leak when a test
opens hundreds of files.

``snapshot()`` output is deterministic (entries sorted by label, counter
keys sorted) so snapshots diff cleanly in tests and CI artifacts, and
``metric_schema()`` reduces a snapshot to its key structure for the
golden-schema drift check (``benchmarks/check_metrics_schema.py``).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

from repro._ctx import SESSION

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "active_registry",
    "register_engine",
    "register_file",
    "register_service",
    "snapshot",
    "reset",
    "metric_schema",
]


def _global_counters() -> Dict[str, int]:
    """The process-default counters, reported once per snapshot."""
    from repro.core.blockprog import BLOCKPROG_STATS
    from repro.core.gather import KERNEL_PATHS

    out = dict(BLOCKPROG_STATS.snapshot())
    out.update(KERNEL_PATHS.snapshot())
    return dict(sorted(out.items()))


class MetricsRegistry:
    """Weak registry of stats producers with one snapshot/reset surface.

    One instance per :class:`~repro.session.IOSession` plus the process
    default (:data:`REGISTRY`).  A session-bound registry reports and
    resets *its session's* block-program and kernel-path counters under
    the ``global`` key — the key name is kept for snapshot-schema
    compatibility, but for a session it means "session-wide", so two
    concurrent tenants' snapshots never absorb each other's counts.
    """

    def __init__(self, session=None) -> None:
        self._mu = threading.Lock()
        # Weak back-reference: the session owns this registry strongly.
        self._session = (
            weakref.ref(session) if session is not None else None
        )
        # label -> weakref to the stats-bearing object.  Engine labels are
        # (path, engine_name, rank); file labels are (path,).
        self._engines: Dict[Tuple[str, str, int], weakref.ref] = {}
        self._files: Dict[str, weakref.ref] = {}
        # tenant label -> weakref to a ServiceStats (repro.server).
        self._services: Dict[str, weakref.ref] = {}

    def _scope(self):
        """``(prog_stats, kernel_paths)`` this registry reports under
        ``global``: the session's counters, or the process defaults."""
        s = self._session() if self._session is not None else None
        if s is not None:
            return s.prog_stats, s.kernel_paths
        from repro.core.blockprog import BLOCKPROG_STATS
        from repro.core.gather import KERNEL_PATHS

        return BLOCKPROG_STATS, KERNEL_PATHS

    # ------------------------------------------------------------------
    # Registration (weak; dead entries pruned on snapshot)
    # ------------------------------------------------------------------
    def register_engine(self, engine) -> None:
        """Register an engine instance under (path, engine, rank)."""
        fh = engine.fh
        label = (str(fh.shared.path), engine.name, int(fh.comm.rank))
        with self._mu:
            self._engines[label] = weakref.ref(engine)

    def register_file(self, path: str, stats) -> None:
        """Register a file's :class:`FileStats` under its path."""
        with self._mu:
            self._files[str(path)] = weakref.ref(stats)

    def register_service(self, tenant: str, stats) -> None:
        """Register a tenant's :class:`~repro.server.admission.
        ServiceStats` under its tenant label."""
        with self._mu:
            self._services[str(tenant)] = weakref.ref(stats)

    def _live(self):
        """(engine, file, service entries) with dead weakrefs pruned."""
        with self._mu:
            engines, dead = [], []
            for label, ref in self._engines.items():
                obj = ref()
                if obj is None:
                    dead.append(label)
                else:
                    engines.append((label, obj))
            for label in dead:
                del self._engines[label]
            files, dead = [], []
            for path, ref in self._files.items():
                obj = ref()
                if obj is None:
                    dead.append(path)
                else:
                    files.append((path, obj))
            for path in dead:
                del self._files[path]
            services, dead = [], []
            for tenant, ref in self._services.items():
                obj = ref()
                if obj is None:
                    dead.append(tenant)
                else:
                    services.append((tenant, obj))
            for tenant in dead:
                del self._services[tenant]
        return engines, files, services

    # ------------------------------------------------------------------
    # The unified surface
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every live metric, deterministically ordered.

        ``{"engines": [...], "files": [...], "service": [...],
        "global": {...}}`` where each engine entry is ``{"path",
        "engine", "rank", "counters", "phases"}``, each file entry
        ``{"path", "counters"}``, and each service entry ``{"tenant",
        "counters"}`` (one per registered tenant).
        """
        engines, files, services = self._live()
        eng_out: List[dict] = []
        for (path, name, rank), eng in sorted(engines, key=lambda e: e[0]):
            eng_out.append({
                "path": path,
                "engine": name,
                "rank": rank,
                "counters": dict(sorted(eng.stats.snapshot().items())),
                "phases": eng.stats.phases.snapshot(),
            })
        file_out: List[dict] = []
        for path, st in sorted(files, key=lambda f: f[0]):
            file_out.append({
                "path": path,
                "counters": dict(sorted(st.snapshot().items())),
            })
        svc_out: List[dict] = []
        for tenant, st in sorted(services, key=lambda s: s[0]):
            svc_out.append({
                "tenant": tenant,
                "counters": dict(sorted(st.snapshot().items())),
            })
        prog_stats, kernel_paths = self._scope()
        counters = dict(prog_stats.snapshot())
        counters.update(kernel_paths.snapshot())
        return {
            "engines": eng_out,
            "files": file_out,
            "service": svc_out,
            "global": dict(sorted(counters.items())),
        }

    def reset(self) -> None:
        """Zero every live registered stats object *and* this scope's
        block-program/kernel-path counters (the reset that the old
        per-engine merge never did)."""
        prog_stats, kernel_paths = self._scope()
        engines, files, services = self._live()
        for _label, eng in engines:
            st = eng.stats
            for f in (
                "list_tuples_built", "list_tuples_sent",
                "list_tuples_merged", "list_scans", "ff_navigations",
                "ff_kernel_calls", "ff_view_bytes_exchanged",
                "coll_rounds", "coll_domain_skew",
            ):
                setattr(st, f, 0)
            st.plan.__init__()
            st.phases.reset()
            st.rounds.reset()
        for _path, st in files:
            st.reset()
        for _tenant, st in services:
            st.reset()
        prog_stats.reset()
        kernel_paths.reset()

    def clear(self) -> None:
        """Forget all registrations (process-wide counters untouched)."""
        with self._mu:
            self._engines.clear()
            self._files.clear()
            self._services.clear()


def metric_schema(snap: Optional[dict] = None) -> dict:
    """Reduce a snapshot to its key structure for drift checks.

    Engine schemas are keyed by engine name (labels vary run to run; the
    counter/phase key sets must not), file counter keys are unioned, and
    the global key list is taken verbatim.
    """
    if snap is None:
        snap = active_registry().snapshot()
    engines: Dict[str, dict] = {}
    for e in snap["engines"]:
        engines[e["engine"]] = {
            "counters": sorted(e["counters"]),
            "phases": sorted(e["phases"]),
        }
    file_keys: set = set()
    for f in snap["files"]:
        file_keys.update(f["counters"])
    service_keys: set = set()
    for s in snap.get("service", ()):
        service_keys.update(s["counters"])
    return {
        "engines": {k: engines[k] for k in sorted(engines)},
        "file_counters": sorted(file_keys),
        "global": sorted(snap["global"]),
        "service": sorted(service_keys),
    }


#: The process-default registry (used whenever no session is active).
REGISTRY = MetricsRegistry()


def active_registry(session=None) -> MetricsRegistry:
    """Resolve a registry: ``session``'s if given, else the active
    session's, else the process default."""
    if session is not None:
        return session.metrics
    s = SESSION.get(None)
    return REGISTRY if s is None else s.metrics


def register_engine(engine, session=None) -> None:
    active_registry(session).register_engine(engine)


def register_file(path: str, stats, session=None) -> None:
    active_registry(session).register_file(path, stats)


def register_service(tenant: str, stats, session=None) -> None:
    active_registry(session).register_service(tenant, stats)


def snapshot(session=None) -> dict:
    return active_registry(session).snapshot()


def reset(session=None) -> None:
    active_registry(session).reset()

"""Observability: tracing, unified metrics, per-phase time accounting.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nestable spans in per-rank ring buffers,
  near-zero cost when off (``REPRO_TRACE`` / :func:`set_tracing` / the
  ``obs_trace`` open hint);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` labeling every
  ``EngineStats`` / ``FileStats`` producer and reporting the
  process-global block-program / kernel-path counters exactly once;
* :mod:`repro.obs.phases` — always-on per-phase wall-time buckets
  (plan / pack / unpack / file_io / exchange / lock / sync), the
  Table-3-style decomposition ``repro btio --report phases`` prints.

Exporters (Chrome-trace JSON for Perfetto, text summary) live in
:mod:`repro.obs.export`.
"""

from repro.obs import trace
from repro.obs.export import chrome_trace, export_chrome_trace, text_summary
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    metric_schema,
    register_engine,
    register_file,
)
from repro.obs.phases import BUCKETS, PhaseAccumulator, format_phase_table
from repro.obs.trace import TRACER, Span, Tracer, add_span, set_tracing, span

__all__ = [
    "BUCKETS",
    "MetricsRegistry",
    "PhaseAccumulator",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "add_span",
    "chrome_trace",
    "export_chrome_trace",
    "format_phase_table",
    "metric_schema",
    "register_engine",
    "register_file",
    "set_tracing",
    "span",
    "text_summary",
    "trace",
]

"""Observability: tracing, unified metrics, per-phase time accounting.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — nestable spans in per-rank ring buffers,
  near-zero cost when off (``REPRO_TRACE`` / :func:`set_tracing` / the
  ``obs_trace`` open hint);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` labeling every
  ``EngineStats`` / ``FileStats`` producer and reporting the
  process-global block-program / kernel-path counters exactly once;
* :mod:`repro.obs.phases` — always-on per-phase wall-time buckets
  (plan / pack / unpack / file_io / exchange / lock / sync), the
  Table-3-style decomposition ``repro btio --report phases`` prints.

Cross-rank analysis sits on top: :mod:`repro.obs.causal` merges the
per-rank span/edge rings into a causal graph (critical path, wait
attribution), and :mod:`repro.obs.flight` is the always-on flight
recorder dumped when a world aborts.

Exporters (Chrome-trace JSON for Perfetto, text summary) live in
:mod:`repro.obs.export`.
"""

from repro.obs import causal, flight, trace
from repro.obs.causal import build_graph
from repro.obs.export import chrome_trace, export_chrome_trace, text_summary
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    metric_schema,
    register_engine,
    register_file,
)
from repro.obs.phases import BUCKETS, PhaseAccumulator, format_phase_table
from repro.obs.trace import (
    TRACER,
    Edge,
    Span,
    Tracer,
    add_edge,
    add_span,
    set_tracing,
    span,
)

__all__ = [
    "BUCKETS",
    "Edge",
    "MetricsRegistry",
    "PhaseAccumulator",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "add_edge",
    "add_span",
    "build_graph",
    "causal",
    "chrome_trace",
    "export_chrome_trace",
    "flight",
    "format_phase_table",
    "metric_schema",
    "register_engine",
    "register_file",
    "set_tracing",
    "span",
    "text_summary",
    "trace",
]

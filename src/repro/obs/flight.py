"""Always-on flight recorder: what was the world doing when it died?

Tracing answers post-hoc questions about runs you *chose* to trace.
Failures don't wait to be chosen: a rank raises, gets SIGKILLed, or a
world times out (the ``repro/mpi`` failure paths), and the evidence is
gone with the processes.  The flight recorder keeps a small, bounded,
always-on ring of breadcrumbs per rank — collective entries, round
completions, errors — cheap enough to leave running everywhere (one
deque append per *round*, not per op), and turns it into a single JSON
artifact at the moment a world aborts.

Dump policy: the in-memory record is always built on abort and kept
(:func:`last_record`), but it is only **written to disk when the
``REPRO_FLIGHT`` environment variable names a path** — test suites
inject hundreds of intentional failures and must not litter the tree.
``REPRO_FLIGHT=/path/to/flight.json`` (a directory gets
``flight_record.json`` inside).  ``repro flight`` dumps on demand.

Dead ranks can't ship breadcrumbs.  The proc runtime therefore installs
a *beacon* in each rank process (:func:`set_beacon`) that writes the
rank's last completed round index into shared memory as a side effect
of :func:`note_round`; when the parent finds a rank dead it reads the
beacon slot and the flight record still names the failed rank's last
round.  See ``docs/observability.md`` §4 for the record schema.
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from collections import deque
from typing import Callable, Dict, Optional

from repro._ctx import SESSION
from repro.obs.trace import _current_rank

__all__ = [
    "FLIGHT_VERSION",
    "FlightRecorder",
    "RECORDER",
    "active_recorder",
    "dump_on_abort",
    "last_record",
    "note",
    "note_round",
    "set_beacon",
]

#: Schema version stamped into every record (validated by
#: ``benchmarks/check_metrics_schema.py --flight``).
FLIGHT_VERSION = 1

#: Breadcrumbs kept per rank.  Rounds dominate; 256 rounds of history
#: is far more than any failure post-mortem has needed.
MAX_CRUMBS_PER_RANK = 256

_now = time.perf_counter


class FlightRecorder:
    """Bounded per-rank breadcrumb rings + last-round tracking.

    One instance per :class:`~repro.session.IOSession` plus the process
    default (:data:`RECORDER`), so concurrent worlds/tenants keep
    separate records.  A session-bound recorder reports its session's
    ``global`` counters in :meth:`record`.
    """

    def __init__(self, maxlen: int = MAX_CRUMBS_PER_RANK,
                 session=None) -> None:
        self.maxlen = maxlen
        self._session = (
            weakref.ref(session) if session is not None else None
        )
        self._rings: Dict[int, deque] = {}
        self._last_round: Dict[int, int] = {}
        self._beacon: Optional[Callable[[int], None]] = None
        self._mu = threading.Lock()

    # ------------------------------------------------------------------
    def _ring(self, rank: int) -> deque:
        ring = self._rings.get(rank)
        if ring is None:
            with self._mu:
                ring = self._rings.setdefault(
                    rank, deque(maxlen=self.maxlen))
        return ring

    def note(self, kind: str, rank: Optional[int] = None, **info) -> None:
        """Append one breadcrumb ``(t, kind, info)`` on the rank's ring.

        ``t`` is an absolute ``perf_counter`` stamp (CLOCK_MONOTONIC —
        coherent across the proc runtime's rank processes), rebased
        when the record is built.
        """
        r = _current_rank() if rank is None else rank
        self._ring(r).append((_now(), kind, info or None))

    def note_round(self, index: int, total: int,
                   rank: Optional[int] = None, **info) -> None:
        """Breadcrumb a completed aggregation round; also advances the
        rank's last-round marker and fires the beacon (proc runtime)."""
        r = _current_rank() if rank is None else rank
        self._last_round[r] = index
        b = self._beacon
        if b is not None:
            try:
                b(index)
            except Exception:
                pass
        self._ring(r).append(
            (_now(), "round", {"index": index, "total": total, **info}))

    def set_beacon(self, fn: Optional[Callable[[int], None]]) -> None:
        """Install a per-process callback invoked with each completed
        round index (the proc runtime points it at a shared-memory slot
        the parent can read even after this process dies)."""
        self._beacon = fn

    def clear(self) -> None:
        with self._mu:
            self._rings.clear()
            self._last_round.clear()

    # ------------------------------------------------------------------
    # Cross-process shipping (proc runtime reports).
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        with self._mu:
            return {
                "crumbs": {r: list(ring)
                           for r, ring in self._rings.items()},
                "last_round": dict(self._last_round),
            }

    def ingest_state(self, state: dict) -> None:
        for r, crumbs in state.get("crumbs", {}).items():
            ring = self._ring(r)
            for crumb in crumbs:
                ring.append(tuple(crumb))
        for r, idx in state.get("last_round", {}).items():
            self._last_round[r] = max(self._last_round.get(r, -1), idx)

    # ------------------------------------------------------------------
    def record(self, reason: str, error: Optional[BaseException] = None,
               failed_rank: Optional[int] = None,
               failed_ranks: Optional[list] = None,
               last_rounds: Optional[Dict[int, int]] = None,
               backend: Optional[str] = None,
               world_size: Optional[int] = None) -> dict:
        """Build the flight record as a JSON-ready dict."""
        with self._mu:
            rings = {r: list(ring) for r, ring in self._rings.items()}
            rounds = dict(self._last_round)
        if last_rounds:
            for r, idx in last_rounds.items():
                rounds[r] = max(rounds.get(r, -1), idx)
        t0 = min((c[0] for ring in rings.values() for c in ring),
                 default=0.0)
        ranks = {
            str(r): {
                "breadcrumbs": [
                    [round(t - t0, 6), kind, info]
                    for t, kind, info in ring
                ]
            }
            for r, ring in sorted(rings.items())
        }
        err = None
        if error is not None:
            err = {"type": type(error).__name__, "message": str(error)}
        counters = {}
        try:
            s = self._session() if self._session is not None else None
            if s is not None:
                counters = s.metrics.snapshot().get("global", {})
            else:
                from repro.obs.metrics import REGISTRY
                counters = REGISTRY.snapshot().get("global", {})
        except Exception:
            pass
        spans_dropped = {}
        recent_spans: Dict[str, list] = {}
        try:
            from repro.obs import trace
            snap = trace.TRACER.snapshot()
            spans_dropped = {str(r): n for r, n
                            in sorted(snap["spans_dropped"].items())}
            if trace.TRACE_ON:
                for r in trace.TRACER.ranks():
                    tail = trace.TRACER.spans(r)[-16:]
                    recent_spans[str(r)] = [
                        [s.name, round(s.t0, 6), round(s.t1, 6)]
                        for s in tail
                    ]
        except Exception:
            pass
        return {
            "flight_version": FLIGHT_VERSION,
            "reason": reason,
            "backend": backend,
            "world_size": world_size,
            "error": err,
            "failed_rank": failed_rank,
            "failed_ranks": sorted(failed_ranks or
                                   ([] if failed_rank is None
                                    else [failed_rank])),
            "last_rounds": {str(r): rounds[r] for r in sorted(rounds)},
            "ranks": ranks,
            "counters": counters,
            "spans_dropped": spans_dropped,
            "recent_spans": recent_spans,
        }


#: The process-default flight recorder (no active session).
RECORDER = FlightRecorder()

_last_record: Optional[dict] = None
_mu = threading.Lock()


def active_recorder() -> FlightRecorder:
    """The active session's recorder, or the process default."""
    s = SESSION.get(None)
    return RECORDER if s is None else s.flight


def note(kind: str, rank: Optional[int] = None, **info) -> None:
    """Module-level convenience for :meth:`FlightRecorder.note`."""
    active_recorder().note(kind, rank=rank, **info)


def note_round(index: int, total: int, rank: Optional[int] = None,
               **info) -> None:
    """Module-level convenience for :meth:`FlightRecorder.note_round`."""
    active_recorder().note_round(index, total, rank=rank, **info)


def set_beacon(fn: Optional[Callable[[int], None]]) -> None:
    active_recorder().set_beacon(fn)


def last_record() -> Optional[dict]:
    """The most recent flight record built in this process (any
    reason), or None."""
    return _last_record


def _resolve_path(path: str) -> str:
    if os.path.isdir(path):
        return os.path.join(path, "flight_record.json")
    return path


def dump(path: str, reason: str = "on_demand", **kw) -> str:
    """Build the current record and write it to ``path``; returns the
    resolved file path."""
    global _last_record
    rec = active_recorder().record(reason, **kw)
    with _mu:
        _last_record = rec
    out = _resolve_path(path)
    with open(out, "w") as f:
        json.dump(rec, f, indent=1, sort_keys=True)
        f.write("\n")
    return out


def dump_on_abort(error: BaseException, backend: str,
                  failed_rank: Optional[int] = None,
                  failed_ranks: Optional[list] = None,
                  last_rounds: Optional[Dict[int, int]] = None,
                  world_size: Optional[int] = None,
                  recorder: Optional[FlightRecorder] = None,
                  ) -> Optional[str]:
    """Called by the SPMD runtimes when a world dies.  Always builds
    and stashes the record; writes it to disk only when
    ``REPRO_FLIGHT`` names a destination.  ``recorder`` pins the record
    to a specific world's session recorder (the sim runtime passes the
    one it cleared at launch); default: the active context's.  Never
    raises — this runs on the failure path and must not mask the
    original error."""
    global _last_record
    try:
        rec = (recorder if recorder is not None
               else active_recorder()).record(
            "abort", error=error, failed_rank=failed_rank,
            failed_ranks=failed_ranks, last_rounds=last_rounds,
            backend=backend, world_size=world_size)
        with _mu:
            _last_record = rec
        path = os.environ.get("REPRO_FLIGHT", "").strip()
        if not path:
            return None
        out = _resolve_path(path)
        with open(out, "w") as f:
            json.dump(rec, f, indent=1, sort_keys=True)
            f.write("\n")
        return out
    except Exception:
        return None

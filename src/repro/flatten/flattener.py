"""Explicit flattening of a datatype into an :class:`OLList`.

This is the analogue of ROMIO's ``ADIOI_Flatten``: the constructor tree is
walked once and one ``(offset, length)`` tuple is emitted per maximal
contiguous block.  Cost and memory are O(Nblock) — the overhead the paper
identifies (§2.4, first two bullets) and which listless I/O eliminates.

The walk itself is block-wise, not element-wise: a contiguous run of basic
elements is emitted as a single tuple without expanding its type map, just
as ROMIO does.  Adjacent blocks produced by neighbouring tree nodes are
coalesced on the way out.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.datatypes.base import Datatype
from repro.datatypes.basic import BasicType, BoundsMarker
from repro.datatypes.constructors import (
    ContiguousType,
    HIndexedType,
    HVectorType,
    ResizedType,
    StructType,
)
from repro.errors import FlattenError
from repro.flatten.ol_list import OLList

__all__ = ["flatten_datatype", "flatten_cached", "flatten_count",
           "iter_blocks"]


def iter_blocks(dt: Datatype, base: int = 0) -> Iterator[Tuple[int, int]]:
    """Yield the contiguous blocks of one instance of ``dt`` placed at byte
    offset ``base``, in type-map order, without final coalescing.

    Contiguous subtrees are emitted as single blocks; the generator does
    O(Nblock) work in total.
    """
    if isinstance(dt, BoundsMarker):
        return
    if isinstance(dt, BasicType):
        yield (base, dt.nbytes)
        return
    if dt.is_contiguous:
        # Data fills [lb, ub) exactly: one block, no descent needed.
        yield (base + dt.lb, dt.size)
        return
    if isinstance(dt, ContiguousType):
        ext = dt.base.extent
        for i in range(dt.count):
            yield from iter_blocks(dt.base, base + i * ext)
        return
    if isinstance(dt, HVectorType):
        ext = dt.base.extent
        inner = dt.base
        if inner.is_contiguous and dt.blocklen > 0:
            # The classic vector case: one tuple per stride repetition.
            blk = dt.blocklen * inner.size
            lo = inner.lb
            for i in range(dt.count):
                yield (base + i * dt.stride + lo, blk)
            return
        for i in range(dt.count):
            start = base + i * dt.stride
            for j in range(dt.blocklen):
                yield from iter_blocks(inner, start + j * ext)
        return
    if isinstance(dt, HIndexedType):
        ext = dt.base.extent
        inner = dt.base
        if inner.is_contiguous:
            sz = inner.size
            lo = inner.lb
            for b, d in zip(dt.blocklens, dt.displs):
                if b:
                    yield (base + d + lo, b * sz)
            return
        for b, d in zip(dt.blocklens, dt.displs):
            for j in range(b):
                yield from iter_blocks(inner, base + d + j * ext)
        return
    if isinstance(dt, StructType):
        for b, d, t in zip(dt.blocklens, dt.displs, dt.types):
            ext = t.extent
            for j in range(b):
                yield from iter_blocks(t, base + d + j * ext)
        return
    if isinstance(dt, ResizedType):
        yield from iter_blocks(dt.base, base)
        return
    raise FlattenError(f"cannot flatten {type(dt).__name__}")


def _coalesce_exact(
    pieces: Iterator[Tuple[int, int]],
) -> Iterator[Tuple[int, int]]:
    """Merge pieces that are exactly adjacent *in sequence order*.

    Unlike an interval union this preserves pack/unpack semantics for
    non-monotonic memtypes: bytes visited twice stay visited twice.
    """
    cur_off = None
    cur_len = 0
    for off, ln in pieces:
        if ln == 0:
            continue
        if cur_off is not None and off == cur_off + cur_len:
            cur_len += ln
        else:
            if cur_off is not None:
                yield (cur_off, cur_len)
            cur_off, cur_len = off, ln
    if cur_off is not None:
        yield (cur_off, cur_len)


def flatten_datatype(dt: Datatype) -> OLList:
    """Explicitly flatten one instance of ``dt`` into an ol-list.

    O(Nblock) time and memory — the cost ROMIO pays when a fileview is
    first established (the list is then cached per datatype, which the
    list-based engine also does).
    """
    return OLList(_coalesce_exact(iter_blocks(dt)))


def flatten_cached(dt: Datatype) -> OLList:
    """Flatten with the per-datatype cache ROMIO keeps.

    The first call pays the O(Nblock) cost and stores the list on the
    (immutable) datatype; later fileviews over the same type reuse it.
    """
    flat = getattr(dt, "_ollist_cache", None)
    if flat is None:
        flat = flatten_datatype(dt)
        dt._ollist_cache = flat
    return flat


def flatten_count(dt: Datatype, count: int) -> OLList:
    """Flatten ``count`` tiled instances of ``dt`` (stride = extent)."""

    def gen() -> Iterator[Tuple[int, int]]:
        ext = dt.extent
        for i in range(count):
            yield from iter_blocks(dt, i * ext)

    return OLList(_coalesce_exact(gen()))

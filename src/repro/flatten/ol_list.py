"""The ol-list: ROMIO's flat ``(offset, length)`` representation.

An :class:`OLList` stores one ``(offset, length)`` tuple per maximal
contiguous block of a flattened datatype, in type-map order.  For the
monotonic types required of fileviews the offsets are sorted.

Faithfulness notes
------------------

* Navigation methods :meth:`find_position` and :meth:`find_block_linear`
  perform the *linear traversal* the paper attributes to list-based I/O
  ("on average Nblock/2 elements per access").  The benchmarked list-based
  engine uses these.  A binary-search variant
  (:meth:`find_block_bisect`) exists for tests and for the ablation bench
  that isolates the traversal cost.
* :meth:`nbytes_repr` reports the memory the representation itself
  consumes: ``Nblock * 16`` bytes (8-byte offset + 8-byte length), the
  quantity the paper compares against the payload size.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Tuple

from repro.errors import FlattenError

__all__ = ["OLList"]

#: Bytes per stored tuple: sizeof(MPI_Aint) + sizeof(MPI_Offset).
TUPLE_BYTES = 16


class OLList:
    """A list of ``(offset, length)`` tuples describing contiguous blocks."""

    __slots__ = ("offsets", "lengths", "_cum", "_size")

    def __init__(self, pairs: Iterable[Tuple[int, int]]):
        offsets: List[int] = []
        lengths: List[int] = []
        size = 0
        for off, ln in pairs:
            if ln < 0:
                raise FlattenError(f"negative block length {ln}")
            if ln == 0:
                continue
            offsets.append(off)
            lengths.append(ln)
            size += ln
        self.offsets = offsets
        self.lengths = lengths
        self._size = size
        self._cum: List[int] | None = None  # lazy prefix sums (tests only)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.offsets)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.offsets, self.lengths))

    def __getitem__(self, i: int) -> Tuple[int, int]:
        return (self.offsets[i], self.lengths[i])

    @property
    def size(self) -> int:
        """Total data bytes described by the list."""
        return self._size

    @property
    def nbytes_repr(self) -> int:
        """Memory consumed by the representation itself (paper §2.1)."""
        return len(self.offsets) * TUPLE_BYTES

    def end_offset(self) -> int:
        """One past the last described byte (0 for an empty list)."""
        if not self.offsets:
            return 0
        return self.offsets[-1] + self.lengths[-1]

    # ------------------------------------------------------------------
    # Navigation (the costs the paper attributes to list-based I/O)
    # ------------------------------------------------------------------
    def find_position(self, nbytes: int) -> Tuple[int, int]:
        """Locate the ``nbytes``-th data byte by linear traversal.

        Returns ``(block_index, offset_within_block)``.  ``nbytes`` equal
        to the total size returns ``(len(self), 0)`` (the end position).
        This is the O(Nblock) scan of the conventional implementation.
        """
        if nbytes < 0:
            raise FlattenError(f"negative byte position {nbytes}")
        remaining = nbytes
        for i, ln in enumerate(self.lengths):
            if remaining < ln:
                return (i, remaining)
            remaining -= ln
        if remaining == 0:
            return (len(self.lengths), 0)
        raise FlattenError(
            f"position {nbytes} beyond list of {self._size} data bytes"
        )

    def find_block_linear(self, abs_offset: int) -> int:
        """Inverse search: index of the first block whose end lies beyond
        ``abs_offset`` (sorted lists only), by linear traversal."""
        for i, (off, ln) in enumerate(zip(self.offsets, self.lengths)):
            if abs_offset < off + ln:
                return i
        return len(self.offsets)

    def find_block_bisect(self, abs_offset: int) -> int:
        """Binary-search variant of :meth:`find_block_linear`.

        Not used by the faithful list-based engine; provided for tests and
        the traversal-cost ablation.
        """
        # Blocks are sorted and non-overlapping for fileview lists.
        i = bisect_right(self.offsets, abs_offset) - 1
        if i >= 0 and abs_offset < self.offsets[i] + self.lengths[i]:
            return i
        return i + 1

    def data_before(self, abs_offset: int) -> int:
        """Number of data bytes located before absolute offset
        ``abs_offset`` (sorted lists only), by linear traversal."""
        total = 0
        for off, ln in zip(self.offsets, self.lengths):
            if off >= abs_offset:
                break
            total += min(ln, abs_offset - off)
        return total

    # ------------------------------------------------------------------
    def shifted(self, disp: int) -> "OLList":
        """A copy of the list with every offset displaced by ``disp``."""
        out = OLList(())
        out.offsets = [o + disp for o in self.offsets]
        out.lengths = list(self.lengths)
        out._size = self._size
        return out

    def to_pairs(self) -> List[Tuple[int, int]]:
        """Materialize as a list of tuples (for serialization in tests)."""
        return list(zip(self.offsets, self.lengths))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(
            f"({o},{n})" for o, n in list(zip(self.offsets, self.lengths))[:4]
        )
        more = "..." if len(self.offsets) > 4 else ""
        return f"OLList[{len(self)} blocks, {self._size}B: {head}{more}]"

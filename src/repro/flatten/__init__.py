"""Explicit (list-based) flattening of MPI datatypes — the ROMIO baseline.

This subpackage reproduces the conventional technique the paper's §2
analyzes: a datatype is *explicitly flattened* into an **ol-list** of
``(offset, length)`` tuples, one per maximal contiguous block, which is

* built in O(Nblock) time (:func:`flatten_datatype`),
* stored in O(Nblock) memory (16 bytes per tuple, as the paper counts),
* traversed linearly for navigation (:class:`OLList` search operations),
* expanded per access range and exchanged between processes for collective
  I/O (:func:`repro.flatten.list_ops.expand_range`),
* merged across processes for ROMIO's collective-write contiguity
  optimization (:func:`repro.flatten.list_ops.merge_lists`).

The list-based I/O engine (:mod:`repro.io.engines.list_based`) is built
exclusively on these primitives so that its costs mirror ROMIO's.
"""

from repro.flatten.ol_list import OLList
from repro.flatten.flattener import (
    flatten_cached,
    flatten_count,
    flatten_datatype,
)
from repro.flatten.list_ops import (
    expand_range,
    merge_lists,
    coalesce,
    total_length,
    is_single_block,
)

__all__ = [
    "OLList",
    "flatten_datatype",
    "flatten_cached",
    "flatten_count",
    "expand_range",
    "merge_lists",
    "coalesce",
    "total_length",
    "is_single_block",
]

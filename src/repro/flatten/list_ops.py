"""Operations on ol-lists used by the list-based I/O engine.

These reproduce the per-access list manipulations of the conventional
(ROMIO) implementation, with their authentic costs:

* :func:`expand_range` — the access-process (AP) side of two-phase I/O:
  expand a fileview's ol-list over an absolute file range so it can be
  shipped to an I/O process (IOP).  Cost O(Saccess/Sextent · Nblock) per
  AP×IOP pair (paper §2.3/§2.4).
* :func:`merge_lists` — ROMIO's collective-write optimization: merge the
  per-process lists for a file range to detect whether the combined access
  is contiguous.  Cost O(Σ_p Nblock(p)) (paper §2.3, last paragraph).
* :func:`coalesce`, :func:`total_length`, :func:`is_single_block` —
  helpers shared with tests.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple

from repro.flatten.ol_list import OLList

__all__ = [
    "expand_range",
    "merge_lists",
    "coalesce",
    "total_length",
    "is_single_block",
]


def coalesce(pairs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of offset-sorted, possibly touching/overlapping intervals."""
    out: List[Tuple[int, int]] = []
    for off, ln in pairs:
        if ln <= 0:
            continue
        if out and off <= out[-1][0] + out[-1][1]:
            end = max(out[-1][0] + out[-1][1], off + ln)
            out[-1] = (out[-1][0], end - out[-1][0])
        else:
            out.append((off, ln))
    return out


def total_length(pairs: Iterable[Tuple[int, int]]) -> int:
    """Sum of lengths of the given blocks."""
    return sum(ln for _, ln in pairs)


def is_single_block(pairs: Sequence[Tuple[int, int]]) -> bool:
    """True if the (coalesced) blocks form exactly one contiguous run."""
    return len(pairs) == 1


def expand_range(
    flat: OLList,
    ft_extent: int,
    disp: int,
    lo: int,
    hi: int,
) -> OLList:
    """Absolute-offset blocks of a tiled fileview within ``[lo, hi)``.

    ``flat`` is the ol-list of one filetype instance (offsets relative to
    the instance), which tiles the file from byte ``disp`` with stride
    ``ft_extent``.  The result contains one tuple per contiguous block of
    the view inside the range — the list an AP must build and send for
    every collective access in the conventional implementation.  The
    number of produced tuples is independent of Nblock per instance but
    proportional to the number of instances covered (paper: Ncoll).
    """
    out: List[Tuple[int, int]] = []
    if hi <= lo or len(flat) == 0 or ft_extent <= 0:
        return OLList(())
    if (
        len(flat) == 1
        and flat.offsets[0] == 0
        and flat.lengths[0] == ft_extent
    ):
        # Contiguous tiling: the view exposes every byte, so the
        # expansion is just the clipped range (ROMIO never builds a
        # per-instance list for contiguous filetypes either).
        a = max(lo, disp)
        if hi <= a:
            return OLList(())
        return OLList([(a, hi - a)])
    first = max(0, (lo - disp - flat.end_offset()) // ft_extent)
    n = first
    while True:
        base = disp + n * ft_extent
        if base + (flat.offsets[0] if flat.offsets else 0) >= hi:
            break
        emitted_any = False
        for off, ln in zip(flat.offsets, flat.lengths):
            a = base + off
            b = a + ln
            if b <= lo:
                continue
            if a >= hi:
                break
            a2 = max(a, lo)
            b2 = min(b, hi)
            if b2 > a2:
                if out and out[-1][0] + out[-1][1] == a2:
                    out[-1] = (out[-1][0], out[-1][1] + (b2 - a2))
                else:
                    out.append((a2, b2 - a2))
                emitted_any = True
        n += 1
        if not emitted_any and base > hi:
            break
    return OLList(out)


def merge_lists(lists: Sequence[OLList]) -> List[Tuple[int, int]]:
    """Merge per-process absolute ol-lists into a coalesced union.

    This is the O(Σ_p Nblock(p) · log P) heap merge ROMIO performs to
    decide whether a collective write covers its file range contiguously.
    """
    streams = (iter(lst) for lst in lists)
    merged = heapq.merge(*streams, key=lambda p: p[0])
    return coalesce(merged)

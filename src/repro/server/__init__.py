"""Multi-tenant IOP service over the session-scoped core.

See ``docs/service.md``.  Public surface:

* :class:`IOPServer` — persistent worker pool, per-tenant admission
  control, cross-client plan batching (:mod:`repro.server.core`);
* :class:`ServiceClient` / :class:`ServiceRequest` — tenant-scoped
  client handles with post/wait semantics
  (:mod:`repro.server.client`);
* :class:`AdmissionController`, :class:`ServiceStats`,
  :class:`TenantState` — queues, budgets, weighted-fair dequeue
  (:mod:`repro.server.admission`);
* :func:`plan_batches`, :class:`Batch` — cross-client access merging
  (:mod:`repro.server.batch`);
* :func:`run_soak` — the concurrent-clients soak harness shared by
  tests, ``repro serve`` and ``benchmarks/bench_service.py``
  (:mod:`repro.server.soak`).
"""

from repro.server.admission import (
    AdmissionController,
    ServiceStats,
    TenantState,
)
from repro.server.batch import Batch, plan_batches
from repro.server.client import ServiceClient, ServiceRequest
from repro.server.core import IOPServer
from repro.server.soak import run_soak

__all__ = [
    "AdmissionController",
    "Batch",
    "IOPServer",
    "ServiceClient",
    "ServiceRequest",
    "ServiceStats",
    "TenantState",
    "plan_batches",
    "run_soak",
]

"""Client handles on the IOP service.

:class:`ServiceClient` is a tenant-scoped handle on a running
:class:`~repro.server.core.IOPServer`.  Its nonblocking entry points
carry the deferred-``Request`` semantics of the MPI-IO layer
(``iwrite``/``iread`` on :class:`~repro.io.file_handle.File`) to the
service: the *post* is eager — admission control runs immediately, so
:class:`~repro.errors.ServiceQueueFull` backpressure surfaces as the
post's exception, and a write's payload is pinned by copy so the caller
may reuse its buffer — while the data movement completes asynchronously
in the server's worker pool and is joined by ``wait()``/``test()``.

Many :class:`ServiceClient` instances may share one tenant (they are
just names for the tenant's queue), and many tenants share one server.
Ordering guarantee: requests are ordered only through completion — a
request posted after another's ``wait()`` returned observes its
effects; two in-flight requests may execute in either order (exactly
MPI's nonblocking-I/O contract).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ServiceError

__all__ = ["ServiceClient", "ServiceRequest"]


class ServiceRequest:
    """Handle for one posted service access (MPI-Request-shaped)."""

    def __init__(self, req) -> None:
        self._req = req

    @property
    def path(self) -> str:
        return self._req.path

    @property
    def nbytes(self) -> int:
        return self._req.nbytes

    @property
    def write(self) -> bool:
        return self._req.write

    def test(self) -> bool:
        """True when complete; re-raises the request's error."""
        if not self._req.done():
            return False
        if self._req.error is not None:
            raise self._req.error
        return True

    def wait(self, timeout: Optional[float] = None
             ) -> Optional[np.ndarray]:
        """Block until complete; returns the read data (reads) or
        ``None`` (writes).  Re-raises the request's error — e.g.
        :class:`~repro.errors.ServiceWorkerError` when the IOP worker
        executing it died."""
        if not self._req.wait(timeout):
            raise ServiceError(
                f"request on {self._req.path!r} still pending after "
                f"{timeout}s"
            )
        if self._req.error is not None:
            raise self._req.error
        return self._req.result

    @property
    def latency(self) -> Optional[float]:
        """Post-to-completion seconds (None while pending)."""
        if self._req.t_done is None:
            return None
        return self._req.t_done - self._req.t_post

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self._req.done() else "pending"
        kind = "write" if self._req.write else "read"
        return (f"<ServiceRequest {kind} {self._req.path!r} "
                f"{self._req.nbytes}B {state}>")


class ServiceClient:
    """A tenant's handle on a running :class:`IOPServer`."""

    def __init__(self, server, tenant: str) -> None:
        self.server = server
        self.tenant = tenant
        server.tenant(tenant)  # validate at construction

    # -- nonblocking (post now, complete on wait) ----------------------
    def iwrite(self, path: str, offset: int,
               data: np.ndarray) -> ServiceRequest:
        """Post a write of ``data`` at byte ``offset``; admission
        (queue depth) is checked here, at post time."""
        return ServiceRequest(
            self.server.post(self.tenant, path, True, offset, data=data)
        )

    def iread(self, path: str, offset: int,
              nbytes: int) -> ServiceRequest:
        """Post a read of ``nbytes`` at byte ``offset``."""
        return ServiceRequest(
            self.server.post(self.tenant, path, False, offset,
                             nbytes=nbytes)
        )

    # -- blocking conveniences -----------------------------------------
    def write(self, path: str, offset: int, data: np.ndarray,
              timeout: Optional[float] = None) -> None:
        self.iwrite(path, offset, data).wait(timeout)

    def read(self, path: str, offset: int, nbytes: int,
             timeout: Optional[float] = None) -> np.ndarray:
        return self.iread(path, offset, nbytes).wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ServiceClient tenant={self.tenant!r}>"

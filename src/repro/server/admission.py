"""Admission control for the multi-tenant IOP server.

Three mechanisms, composed (see ``docs/service.md`` §3):

* **bounded per-tenant queues** — each tenant owns a FIFO of posted
  requests with a hard depth limit; a post beyond it raises
  :class:`~repro.errors.ServiceQueueFull` *at post time*, so
  backpressure reaches the client before any bytes are accepted;
* **per-tenant in-flight byte budgets** — a request is dispatched only
  while the tenant's bytes currently executing stay within its budget,
  which bounds how much of the worker pool and staging memory one noisy
  tenant can occupy (a request larger than the whole budget still runs
  when the tenant has nothing in flight — oversized requests must not
  starve);
* **weighted-fair dequeue** — deficit round robin over the tenants:
  each scheduling pass grants every backlogged tenant ``weight ×
  quantum`` bytes of credit and dispatches from its queue head while
  the credit lasts, so sustained dispatch *bandwidth* (not request
  count) is proportional to weight regardless of request sizes.

``fair=False`` degrades the controller to a single global
arrival-order queue with no budgets — the "no admission control"
baseline the service benchmark A/Bs against.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ServiceError, ServiceQueueFull

__all__ = ["AdmissionController", "ServiceStats", "TenantState"]

#: Default DRR credit granted per (weight unit × scheduling pass).
DEFAULT_QUANTUM = 64 * 1024
#: Default per-tenant in-flight byte budget.
DEFAULT_BYTE_BUDGET = 8 * 1024 * 1024
#: Default per-tenant queue depth.
DEFAULT_QUEUE_DEPTH = 256


@dataclass
class ServiceStats:
    """Per-tenant service counters (registered with the obs metrics
    registry under the ``service`` section, labeled by tenant)."""

    #: requests offered to the queue (admitted + rejected)
    posted: int = 0
    #: requests accepted into the tenant queue
    admitted: int = 0
    #: posts refused because the queue was at depth
    rejected_queue_full: int = 0
    #: requests dispatched to the worker pool
    dispatched: int = 0
    #: requests finished successfully
    completed: int = 0
    #: requests finished with an error
    failed: int = 0
    #: times the dequeue stopped at this tenant's head for budget
    budget_stalls: int = 0
    #: bytes accepted at post
    bytes_posted: int = 0
    #: bytes finished (either way)
    bytes_completed: int = 0
    #: bytes written / read on this tenant's behalf
    bytes_written: int = 0
    bytes_read: int = 0
    #: requests that rode a merged multi-request batch
    batched_requests: int = 0

    def snapshot(self) -> dict:
        return dict(sorted(self.__dict__.items()))

    def reset(self) -> None:
        for k in self.__dict__:
            setattr(self, k, 0)


@dataclass
class TenantState:
    """One tenant's queue, budget, fair-share state and counters."""

    name: str
    weight: int = 1
    byte_budget: int = DEFAULT_BYTE_BUDGET
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    queue: deque = field(default_factory=deque)
    in_flight_bytes: int = 0
    deficit: int = 0
    stats: ServiceStats = field(default_factory=ServiceStats)
    #: The tenant's IOSession (attached by the server; admission itself
    #: never touches it).
    session: object = None


class AdmissionController:
    """Bounded tenant queues + byte budgets + DRR fair dequeue.

    Thread-safe; the server posts from client threads and takes from
    its scheduler thread.
    """

    def __init__(self, quantum: int = DEFAULT_QUANTUM,
                 fair: bool = True) -> None:
        if quantum <= 0:
            raise ServiceError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self.fair = fair
        self._mu = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        self._order: List[str] = []
        self._next = 0
        #: Global arrival order (used verbatim when ``fair=False``).
        self._fifo: deque = deque()

    # ------------------------------------------------------------------
    def register(self, name: str, weight: int = 1,
                 byte_budget: int = DEFAULT_BYTE_BUDGET,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> TenantState:
        if weight < 1:
            raise ServiceError(f"tenant weight must be >= 1, got {weight}")
        with self._mu:
            if name in self._tenants:
                raise ServiceError(f"tenant {name!r} already registered")
            t = TenantState(name=name, weight=weight,
                            byte_budget=byte_budget,
                            queue_depth=queue_depth)
            self._tenants[name] = t
            self._order.append(name)
            return t

    def tenant(self, name: str) -> TenantState:
        try:
            return self._tenants[name]
        except KeyError:
            raise ServiceError(f"unknown tenant {name!r}") from None

    def tenants(self) -> List[TenantState]:
        with self._mu:
            return [self._tenants[n] for n in self._order]

    # ------------------------------------------------------------------
    def post(self, name: str, item, nbytes: int) -> None:
        """Queue ``item`` for ``name``; raises :class:`ServiceQueueFull`
        when the tenant queue is at depth (nothing is enqueued)."""
        t = self.tenant(name)
        with self._mu:
            t.stats.posted += 1
            if len(t.queue) >= t.queue_depth:
                t.stats.rejected_queue_full += 1
                raise ServiceQueueFull(
                    f"tenant {name!r} queue full "
                    f"({t.queue_depth} requests outstanding)"
                )
            t.stats.admitted += 1
            t.stats.bytes_posted += nbytes
            t.queue.append((item, nbytes))
            self._fifo.append((t, item, nbytes))

    # ------------------------------------------------------------------
    def take(self) -> List[object]:
        """One scheduling pass: dispatchable items, in dispatch order.

        Fair mode runs one DRR rotation over the backlogged tenants,
        honouring each tenant's in-flight byte budget.  Unfair mode
        drains global arrival order and ignores budgets entirely.
        """
        out: List[object] = []
        with self._mu:
            if not self.fair:
                while self._fifo:
                    t, item, nb = self._fifo.popleft()
                    for i, (it, _n) in enumerate(t.queue):
                        if it is item:
                            del t.queue[i]
                            self._dispatch(t, item, nb, out)
                            break
                return out
            n = len(self._order)
            for i in range(n):
                t = self._tenants[self._order[(self._next + i) % n]]
                if not t.queue:
                    # An idle tenant accumulates no credit: DRR fairness
                    # is over *backlogged* tenants only.
                    t.deficit = 0
                    continue
                t.deficit += t.weight * self.quantum
                while t.queue:
                    item, nb = t.queue[0]
                    if nb > t.deficit:
                        break
                    if (t.in_flight_bytes
                            and t.in_flight_bytes + nb > t.byte_budget):
                        t.stats.budget_stalls += 1
                        break
                    t.queue.popleft()
                    self._remove_fifo(item)
                    t.deficit -= nb
                    self._dispatch(t, item, nb, out)
            if n:
                self._next = (self._next + 1) % n
        return out

    def _dispatch(self, t: TenantState, item, nb: int, out: list) -> None:
        t.in_flight_bytes += nb
        t.stats.dispatched += 1
        out.append(item)

    def _remove_fifo(self, item) -> None:
        for i, (_t, it, _nb) in enumerate(self._fifo):
            if it is item:
                del self._fifo[i]
                return

    # ------------------------------------------------------------------
    def complete(self, name: str, nbytes: int, ok: bool) -> None:
        """Return ``nbytes`` of budget to ``name`` after execution."""
        t = self.tenant(name)
        with self._mu:
            t.in_flight_bytes = max(0, t.in_flight_bytes - nbytes)
            t.stats.bytes_completed += nbytes
            if ok:
                t.stats.completed += 1
            else:
                t.stats.failed += 1

    def backlog(self) -> int:
        """Requests queued (not yet dispatched) across all tenants."""
        with self._mu:
            return sum(len(t.queue) for t in self._tenants.values())

    def in_flight(self) -> int:
        """Requests dispatched but not yet completed."""
        with self._mu:
            return sum(
                t.stats.dispatched - t.stats.completed - t.stats.failed
                for t in self._tenants.values()
            )

"""Cross-client plan batching: merge concurrently posted accesses.

Requests dispatched in the same scheduling pass that touch the same
file are folded into one server-side access when the merged access is
semantically equivalent to executing them individually:

* **writes** merge only when, sorted by offset, they *exactly tile* a
  contiguous byte range (no gap, no overlap) — the merged buffer is
  then independent of execution order.  A write group containing any
  overlap falls back to one-batch-per-request in arrival order, because
  merging (or even offset-sorting) overlapping writes would pick a
  winner the client never asked for;
* **reads** merge while the gap between consecutive requests stays
  within ``max_read_gap`` — the server reads the covering range once
  and each request slices its sub-range out (the service-level analogue
  of data sieving: trade ``gap`` wasted bytes for one access instead of
  two).

Every batch becomes exactly one ``read_at``/``write_at`` on the
server-side file handle, so ``file_accesses`` (vs requests executed)
is the counter that proves batching reduces access rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Batch", "plan_batches"]

#: Default largest read gap (bytes) bridged by a merged read.
DEFAULT_MAX_READ_GAP = 4096


@dataclass
class Batch:
    """One server-side access covering ``[lo, hi)`` of ``path`` on
    behalf of ``items`` (dispatch-ordered requests)."""

    path: str
    write: bool
    lo: int
    hi: int
    items: List[object] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover
        kind = "write" if self.write else "read"
        return (f"<Batch {kind} {self.path!r} [{self.lo}, {self.hi}) "
                f"x{len(self.items)}>")


def _write_runs(items: List[object]) -> List[List[object]]:
    """Partition offset-sorted writes into exactly-tiling runs."""
    runs: List[List[object]] = []
    run: List[object] = []
    end = None
    for it in items:
        if run and it.offset == end:
            run.append(it)
        else:
            if run:
                runs.append(run)
            run = [it]
        end = it.offset + it.nbytes
    if run:
        runs.append(run)
    return runs


def _read_runs(items: List[object], max_gap: int) -> List[List[object]]:
    """Partition offset-sorted reads into gap-bounded runs."""
    runs: List[List[object]] = []
    run: List[object] = []
    end = None
    for it in items:
        if run and it.offset - end <= max_gap:
            run.append(it)
            end = max(end, it.offset + it.nbytes)
        else:
            if run:
                runs.append(run)
            run = [it]
            end = it.offset + it.nbytes
    if run:
        runs.append(run)
    return runs


def plan_batches(items: List[object], merge: bool = True,
                 max_read_gap: int = DEFAULT_MAX_READ_GAP) -> List[Batch]:
    """Fold one dispatch set into server-side accesses.

    ``items`` need ``path``, ``write``, ``offset``, ``nbytes``
    attributes.  ``merge=False`` (the batching-off baseline) emits one
    batch per request in dispatch order.
    """
    if not merge:
        return [
            Batch(it.path, it.write, it.offset, it.offset + it.nbytes,
                  [it])
            for it in items
        ]
    groups: Dict[Tuple[str, bool], List[object]] = {}
    order: List[Tuple[str, bool]] = []
    for it in items:
        key = (it.path, it.write)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(it)
    out: List[Batch] = []
    for key in order:
        path, write = key
        group = groups[key]
        by_off = sorted(group, key=lambda it: (it.offset, it.nbytes))
        if write:
            overlap = any(
                b.offset < a.offset + a.nbytes
                for a, b in zip(by_off, by_off[1:])
            )
            if overlap:
                # Arrival order, one batch each: the only order-safe
                # execution of overlapping writes.
                for it in group:
                    out.append(Batch(path, True, it.offset,
                                     it.offset + it.nbytes, [it]))
                continue
            runs = _write_runs(by_off)
        else:
            runs = _read_runs(by_off, max_read_gap)
        for run in runs:
            lo = run[0].offset
            hi = max(it.offset + it.nbytes for it in run)
            out.append(Batch(path, write, lo, hi, run))
    return out

"""The multi-tenant IOP server.

A persistent worker pool serving byte-addressed reads and writes on a
shared file store to many client "worlds" in one process — the
service-ified form of the paper's I/O processes (IOPs).  Data path::

    ServiceClient.post ──► AdmissionController (per-tenant queue,
         │                  budget, weighted-fair dequeue)
         │ ticket                  │ take()  (scheduler thread)
         ▼                         ▼
    ServiceRequest.wait ◄── plan_batches ──► worker pool ──► File
                             (cross-client    (threads or     handles
                              merge)           IOP processes)

Every tenant owns an :class:`~repro.session.IOSession`, so its
counters, caches and flight breadcrumbs never bleed into another
tenant's; the server itself runs under its own session, which is where
the server-side file handles (one per path, opened on a 1-rank sim
world) register their engines and where worker-death breadcrumbs land.

Worker modes:

``thread`` (default)
    workers are threads executing against an in-process
    :class:`~repro.fs.SimFileSystem` — fast, deterministic, the soak
    and benchmark configuration;
``proc``
    workers are real OS processes executing against an
    :class:`~repro.fs.OsFileSystem` rooted at ``root``, fed over
    ``multiprocessing`` pipes.  A worker that dies mid-request (e.g.
    SIGKILL) fails exactly the requests it was executing with
    :class:`~repro.errors.ServiceWorkerError`, drops a flight
    breadcrumb, and is respawned — subsequent requests succeed.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ServiceError, ServiceWorkerError
from repro.server.admission import (
    DEFAULT_BYTE_BUDGET,
    DEFAULT_QUANTUM,
    DEFAULT_QUEUE_DEPTH,
    AdmissionController,
    TenantState,
)
from repro.server.batch import DEFAULT_MAX_READ_GAP, Batch, plan_batches
from repro.session import IOSession

__all__ = ["IOPServer", "ServerCounters"]

#: Scheduler poll interval when idle (wakes immediately on post/complete).
_IDLE_WAIT = 0.02


class _IORequest:
    """One posted access: the server-side half of a service ticket."""

    __slots__ = ("tenant", "path", "write", "offset", "nbytes", "data",
                 "result", "error", "t_post", "t_done", "_done")

    def __init__(self, tenant: str, path: str, write: bool, offset: int,
                 nbytes: int, data: Optional[np.ndarray]) -> None:
        self.tenant = tenant
        self.path = path
        self.write = write
        self.offset = offset
        self.nbytes = nbytes
        self.data = data
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.t_post = time.perf_counter()
        self.t_done: Optional[float] = None
        self._done = threading.Event()

    def finish(self, error: Optional[BaseException] = None) -> None:
        self.error = error
        self.t_done = time.perf_counter()
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)


class ServerCounters:
    """Server-wide (cross-tenant) execution counters."""

    def __init__(self) -> None:
        self.requests_executed = 0
        self.batches_executed = 0
        #: server-side file accesses actually performed — with batching
        #: this is < requests_executed; the ratio is the rounds saved
        self.file_accesses = 0
        #: requests that shared a merged batch with at least one other
        self.batch_merged_requests = 0
        self.worker_respawns = 0
        self._mu = threading.Lock()

    def snapshot(self) -> dict:
        with self._mu:
            return {
                "batch_merged_requests": self.batch_merged_requests,
                "batches_executed": self.batches_executed,
                "file_accesses": self.file_accesses,
                "requests_executed": self.requests_executed,
                "worker_respawns": self.worker_respawns,
            }


class _ProcWorker:
    """Handle on one IOP worker process + its feeder bookkeeping."""

    def __init__(self, ctx, index: int, root: str, delay: float) -> None:
        self.index = index
        self.root = root
        self.delay = delay
        self.ctx = ctx
        self.conn = None
        self.process = None
        self.spawn()

    def spawn(self) -> None:
        parent, child = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=_proc_worker_main, args=(child, self.root, self.delay),
            daemon=True, name=f"iop-worker-{self.index}",
        )
        self.process.start()
        child.close()
        self.conn = parent

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.conn.close()


def _proc_worker_main(conn, root: str, delay: float) -> None:
    """IOP worker process: execute shipped batches against the shared
    on-disk store.  One 1-rank sim world per open path, handles cached
    for the worker's lifetime."""
    from repro.fs import OsFileSystem
    from repro.io import MODE_CREATE, MODE_RDWR
    from repro.io.file_handle import File
    from repro.mpi.runtime import World

    fs = OsFileSystem(root)
    handles: Dict[str, File] = {}

    def handle(path: str) -> File:
        fh = handles.get(path)
        if fh is None:
            fh = File.open(World(1).comm(0), fs, path,
                           MODE_CREATE | MODE_RDWR)
            handles[path] = fh
        return fh

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _kind, path, write, lo, payload = msg
        if delay:
            time.sleep(delay)
        try:
            fh = handle(path)
            if write:
                buf = np.frombuffer(payload, dtype=np.uint8)
                fh.write_at(lo, buf)
                reply = ("ok", None)
            else:
                buf = np.zeros(payload, dtype=np.uint8)
                size = fh.get_size()
                hi = min(lo + payload, max(lo, size))
                if hi > lo:
                    view = buf[: hi - lo]
                    fh.read_at(lo, view)
                reply = ("ok", buf.tobytes())
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            reply = ("err", type(exc).__name__, str(exc))
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):  # pragma: no cover
            break
    for fh in handles.values():
        try:
            fh.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class IOPServer:
    """Session-scoped, admission-controlled I/O service (one process).

    See the module docstring for the data path.  Lifecycle::

        srv = IOPServer(workers=4)
        srv.register_tenant("a", weight=2)
        srv.start()
        req = srv.post("a", "/f", write=True, offset=0, data=buf)
        req.wait(); srv.stop()

    Clients normally go through
    :class:`~repro.server.client.ServiceClient` instead of calling
    :meth:`post` directly.
    """

    def __init__(self, fs=None, workers: int = 2,
                 worker_mode: str = "thread",
                 quantum: int = DEFAULT_QUANTUM,
                 fair: bool = True,
                 batching: bool = True,
                 max_read_gap: int = DEFAULT_MAX_READ_GAP,
                 root: Optional[str] = None,
                 worker_delay: float = 0.0,
                 name: str = "iop-server") -> None:
        if worker_mode not in ("thread", "proc"):
            raise ServiceError(
                f"worker_mode must be 'thread' or 'proc', "
                f"got {worker_mode!r}"
            )
        if workers < 1:
            raise ServiceError(f"need at least 1 worker, got {workers}")
        self.worker_mode = worker_mode
        self.nworkers = workers
        self.batching = batching
        self.max_read_gap = max_read_gap
        self.worker_delay = worker_delay
        self.session = IOSession(name)
        self.admission = AdmissionController(quantum=quantum, fair=fair)
        self.counters = ServerCounters()
        if worker_mode == "proc":
            if root is None:
                raise ServiceError(
                    "proc worker mode needs a real directory: pass root="
                )
            from repro.fs import OsFileSystem

            self.root = root
            self.fs = fs if fs is not None else OsFileSystem(root)
        else:
            from repro.fs import SimFileSystem

            self.root = None
            self.fs = fs if fs is not None else SimFileSystem()
        self._handles: Dict[str, object] = {}
        self._handle_mu = threading.Lock()
        self._path_locks: Dict[str, threading.Lock] = {}
        self._dispatch: "queue.Queue" = queue.Queue()
        self._wake = threading.Event()
        self._threads: List[threading.Thread] = []
        self._proc_workers: List[_ProcWorker] = []
        self._running = False

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def register_tenant(self, name: str, weight: int = 1,
                        byte_budget: int = DEFAULT_BYTE_BUDGET,
                        queue_depth: int = DEFAULT_QUEUE_DEPTH,
                        ) -> TenantState:
        """Add a tenant: its queue/budget/weight, its own
        :class:`IOSession`, and its counters in the server session's
        metrics registry (``service`` section, labeled by tenant)."""
        t = self.admission.register(name, weight=weight,
                                    byte_budget=byte_budget,
                                    queue_depth=queue_depth)
        t.session = IOSession(f"tenant:{name}")
        from repro.obs import metrics

        metrics.register_service(name, t.stats, session=self.session)
        return t

    def tenant(self, name: str) -> TenantState:
        return self.admission.tenant(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "IOPServer":
        if self._running:
            raise ServiceError("server already running")
        self._running = True
        if self.worker_mode == "proc":
            import multiprocessing as mp

            ctx = mp.get_context()
            self._proc_workers = [
                _ProcWorker(ctx, i, self.root, self.worker_delay)
                for i in range(self.nworkers)
            ]
            for w in self._proc_workers:
                th = threading.Thread(target=self._feeder, args=(w,),
                                      name=f"iop-feeder-{w.index}",
                                      daemon=True)
                self._threads.append(th)
        else:
            for i in range(self.nworkers):
                th = threading.Thread(target=self._thread_worker,
                                      name=f"iop-worker-{i}",
                                      daemon=True)
                self._threads.append(th)
        sched = threading.Thread(target=self._scheduler,
                                 name="iop-scheduler", daemon=True)
        self._threads.append(sched)
        for th in self._threads:
            th.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service.  ``drain=True`` waits for queued and
        in-flight requests to finish first (bounded by ``timeout``);
        anything still pending afterwards fails promptly."""
        if not self._running:
            return
        if drain:
            deadline = time.perf_counter() + timeout
            while (self.admission.backlog() or self.admission.in_flight()):
                if time.perf_counter() >= deadline:
                    break
                time.sleep(0.005)
        self._running = False
        self._wake.set()
        for _ in range(self.nworkers):
            self._dispatch.put(None)
        for th in self._threads:
            th.join(timeout=10.0)
        self._threads = []
        for w in self._proc_workers:
            w.stop()
        self._proc_workers = []
        # Fail anything that never dispatched.
        for t in self.admission.tenants():
            while t.queue:
                item, nb = t.queue.popleft()
                item.finish(ServiceError("server stopped"))
                t.stats.failed += 1
        with self._handle_mu:
            for fh in self._handles.values():
                try:
                    fh.close()
                except Exception:
                    pass
            self._handles.clear()

    def __enter__(self) -> "IOPServer":
        return self.start() if not self._running else self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Posting (the client API lands here)
    # ------------------------------------------------------------------
    def post(self, tenant: str, path: str, write: bool, offset: int,
             data: Optional[np.ndarray] = None,
             nbytes: Optional[int] = None) -> _IORequest:
        """Admit one access.  Raises
        :class:`~repro.errors.ServiceQueueFull` at post time when the
        tenant queue is at depth; otherwise returns the request ticket
        (completed by the worker pool; ``wait()`` on it)."""
        if not self._running:
            raise ServiceError("server is not running")
        if write:
            if data is None:
                raise ServiceError("write post needs data")
            buf = np.ascontiguousarray(data, dtype=np.uint8)
            # Copy at post: the client may reuse its buffer immediately
            # (plan-at-post semantics pin the payload, not the buffer).
            buf = buf.copy() if buf.base is not None or buf is data \
                else buf
            req = _IORequest(tenant, path, True, offset, buf.nbytes, buf)
        else:
            if nbytes is None or nbytes < 0:
                raise ServiceError("read post needs nbytes >= 0")
            req = _IORequest(tenant, path, False, offset, nbytes, None)
        if req.nbytes == 0:
            req.result = np.empty(0, np.uint8) if not write else None
            req.finish()
            return req
        self.admission.post(tenant, req, req.nbytes)
        self._wake.set()
        return req

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _scheduler(self) -> None:
        while self._running:
            self._wake.wait(_IDLE_WAIT)
            self._wake.clear()
            items = self.admission.take()
            if not items:
                continue
            batches = plan_batches(items, merge=self.batching,
                                   max_read_gap=self.max_read_gap)
            for b in batches:
                self._dispatch.put(b)

    # ------------------------------------------------------------------
    # Execution — thread mode
    # ------------------------------------------------------------------
    def _thread_worker(self) -> None:
        with self.session:
            while True:
                b = self._dispatch.get()
                if b is None:
                    return
                try:
                    self._execute_local(b)
                except BaseException as exc:  # noqa: BLE001
                    self._fail_batch(b, exc)

    def _handle(self, path: str):
        from repro.io import MODE_CREATE, MODE_RDWR
        from repro.io.file_handle import File
        from repro.mpi.runtime import World

        with self._handle_mu:
            fh = self._handles.get(path)
            if fh is None:
                fh = File.open(World(1).comm(0), self.fs, path,
                               MODE_CREATE | MODE_RDWR,
                               session=self.session)
                self._handles[path] = fh
                self._path_locks[path] = threading.Lock()
            return fh, self._path_locks[path]

    def _execute_local(self, b: Batch) -> None:
        if self.worker_delay:
            # Test/bench hook: simulated device latency per access, so
            # scheduling windows (and batching opportunities) are
            # deterministic instead of racing the worker pool.
            time.sleep(self.worker_delay)
        fh, lock = self._handle(b.path)
        with lock:
            if b.write:
                buf = np.empty(b.nbytes, np.uint8)
                for it in b.items:
                    off = it.offset - b.lo
                    buf[off:off + it.nbytes] = it.data
                fh.write_at(b.lo, buf)
            else:
                buf = np.zeros(b.nbytes, np.uint8)
                # A merged read may run past EOF in its gap tail; clip
                # to the current size like a POSIX short read.
                size = fh.get_size()
                hi = min(b.hi, max(b.lo, size))
                if hi > b.lo:
                    view = buf[: hi - b.lo]
                    fh.read_at(b.lo, view)
                for it in b.items:
                    off = it.offset - b.lo
                    it.result = buf[off:off + it.nbytes].copy()
        self._complete_batch(b)

    # ------------------------------------------------------------------
    # Execution — proc mode
    # ------------------------------------------------------------------
    def _feeder(self, w: _ProcWorker) -> None:
        while True:
            b = self._dispatch.get()
            if b is None:
                return
            if b.write:
                buf = np.empty(b.nbytes, np.uint8)
                for it in b.items:
                    off = it.offset - b.lo
                    buf[off:off + it.nbytes] = it.data
                msg = ("exec", b.path, True, b.lo, buf.tobytes())
            else:
                msg = ("exec", b.path, False, b.lo, b.nbytes)
            try:
                # One path, one worker at a time (same invariant the
                # per-path locks keep in thread mode).
                lock = self._proc_path_lock(b.path)
                with lock:
                    w.conn.send(msg)
                    reply = w.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._worker_died(w, b, exc)
                continue
            if reply[0] == "ok":
                if not b.write:
                    data = np.frombuffer(reply[1], dtype=np.uint8)
                    for it in b.items:
                        off = it.offset - b.lo
                        it.result = data[off:off + it.nbytes].copy()
                self._complete_batch(b)
            else:
                self._fail_batch(
                    b, ServiceError(f"{reply[1]}: {reply[2]}"))

    def _proc_path_lock(self, path: str) -> threading.Lock:
        with self._handle_mu:
            lock = self._path_locks.get(path)
            if lock is None:
                lock = self._path_locks[path] = threading.Lock()
            return lock

    def _worker_died(self, w: _ProcWorker, b: Batch,
                     exc: BaseException) -> None:
        """A worker process died mid-request: breadcrumb it, fail
        exactly the requests it was executing, respawn."""
        self.session.flight.note(
            "service.worker_dead", rank=w.index,
            path=b.path, write=b.write,
            tenants=sorted({it.tenant for it in b.items}),
            requests=len(b.items),
        )
        with self.counters._mu:
            self.counters.worker_respawns += 1
        self._fail_batch(b, ServiceWorkerError(
            f"IOP worker {w.index} died executing "
            f"{'write' if b.write else 'read'} on {b.path!r} ({exc!r})"
        ))
        if self._running:
            try:
                w.conn.close()
            except Exception:
                pass
            w.process.join(timeout=5.0)
            w.spawn()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete_batch(self, b: Batch) -> None:
        with self.counters._mu:
            self.counters.batches_executed += 1
            self.counters.file_accesses += 1
            self.counters.requests_executed += len(b.items)
            if len(b.items) > 1:
                self.counters.batch_merged_requests += len(b.items)
        for it in b.items:
            t = self.admission.tenant(it.tenant)
            if len(b.items) > 1:
                t.stats.batched_requests += 1
            if b.write:
                t.stats.bytes_written += it.nbytes
            else:
                t.stats.bytes_read += it.nbytes
            self.admission.complete(it.tenant, it.nbytes, ok=True)
            it.finish()
        self._wake.set()

    def _fail_batch(self, b: Batch, exc: BaseException) -> None:
        for it in b.items:
            self.admission.complete(it.tenant, it.nbytes, ok=False)
            it.finish(exc)
        self._wake.set()

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The server session's metrics snapshot (includes the
        ``service`` section with one entry per tenant) plus the
        server-wide execution counters under ``server``."""
        snap = self.session.metrics.snapshot()
        snap["server"] = self.counters.snapshot()
        return snap

"""Concurrent-clients soak harness for the IOP service.

One entry point, :func:`run_soak`, drives N client threads spread over
T tenants against F files on a running (or freshly built)
:class:`~repro.server.core.IOPServer`, then proves **byte-identity to
serialized execution**: every client writes deterministic content into
file stripes disjoint from every other client's, so the final bytes of
every file must equal the serial application of the same writes in any
order.  The harness reads every file back through the service and
compares against the serially computed expectation.

Used by ``tests/test_service.py`` (small tier-1 points + a soak-marked
sweep), ``repro serve`` (the CLI demo) and
``benchmarks/bench_service.py`` (the headline numbers).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ServiceQueueFull

__all__ = ["SoakConfig", "SoakResult", "run_soak"]


@dataclass
class SoakConfig:
    """Shape of one soak run."""

    nclients: int = 32
    nfiles: int = 8
    ntenants: int = 4
    #: write+read rounds per client
    rounds: int = 2
    #: bytes per request
    req_bytes: int = 4096
    workers: int = 4
    worker_mode: str = "thread"
    batching: bool = True
    fair: bool = True
    byte_budget: int = 8 * 1024 * 1024
    queue_depth: int = 10_000
    #: per-tenant weights (cycled; default all 1)
    weights: Optional[List[int]] = None
    #: proc mode only: directory for the on-disk store
    root: Optional[str] = None
    seed: int = 0


@dataclass
class SoakResult:
    """Outcome + per-tenant figures of one soak run."""

    ok: bool
    requests: int
    rejected: int
    bytes_moved: int
    wall_seconds: float
    #: tenant -> sorted latency samples (seconds, completed requests)
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: tenant -> ServiceStats snapshot
    tenant_stats: Dict[str, dict] = field(default_factory=dict)
    #: ServerCounters snapshot
    server: dict = field(default_factory=dict)
    mismatches: int = 0

    def percentile(self, tenant: str, q: float) -> float:
        xs = self.latencies.get(tenant) or [0.0]
        i = min(len(xs) - 1, int(q * len(xs)))
        return xs[i]


def _content(client: int, file_idx: int, rnd: int,
             nbytes: int) -> np.ndarray:
    """Deterministic request payload (cheap, distinct per slot)."""
    base = (client * 131 + file_idx * 31 + rnd * 7 + 1) % 251
    out = np.arange(nbytes, dtype=np.int64) * (base + 1) + base
    return (out % 256).astype(np.uint8)


def run_soak(cfg: SoakConfig, server=None) -> SoakResult:
    """Run one soak; returns figures + the byte-identity verdict.

    Layout: client ``c`` targets file ``c % nfiles`` and owns the
    stripe ``[c * rounds * req_bytes, (c+1) * rounds * req_bytes)`` of
    it — stripes are disjoint, so serialized execution of the same
    writes yields a unique expected image per file regardless of
    order.  Each round every client writes its block, reads it back,
    and checks the echo; after the barrier the harness reads every
    file image back through the service and diffs against the serial
    expectation.
    """
    import time

    from repro.server.core import IOPServer

    own_server = server is None
    if own_server:
        server = IOPServer(
            workers=cfg.workers, worker_mode=cfg.worker_mode,
            batching=cfg.batching, fair=cfg.fair, root=cfg.root,
        )
    tenants = [f"t{i}" for i in range(cfg.ntenants)]
    weights = cfg.weights or [1] * cfg.ntenants
    for i, name in enumerate(tenants):
        server.register_tenant(
            name, weight=weights[i % len(weights)],
            byte_budget=cfg.byte_budget, queue_depth=cfg.queue_depth,
        )
    if own_server:
        server.start()

    from repro.server.client import ServiceClient

    nclients, nfiles, rounds = cfg.nclients, cfg.nfiles, cfg.rounds
    nb = cfg.req_bytes
    paths = [f"/soak{f}" for f in range(nfiles)]
    expected = {
        p: np.zeros(0, np.uint8) for p in paths
    }
    # Serial expectation: apply every write to an in-memory image.
    sizes = {p: 0 for p in paths}
    for c in range(nclients):
        p = paths[c % nfiles]
        sizes[p] = max(sizes[p], (c + 1) * rounds * nb)
    for p in paths:
        expected[p] = np.zeros(sizes[p], np.uint8)
    for c in range(nclients):
        f = c % nfiles
        for r in range(rounds):
            off = (c * rounds + r) * nb
            expected[paths[f]][off:off + nb] = _content(c, f, r, nb)

    lat_mu = threading.Lock()
    latencies: Dict[str, List[float]] = {t: [] for t in tenants}
    errors: List[BaseException] = []
    rejected = [0]

    def client_main(c: int) -> None:
        tenant = tenants[c % cfg.ntenants]
        cl = ServiceClient(server, tenant)
        f = c % nfiles
        p = paths[f]
        try:
            for r in range(rounds):
                off = (c * rounds + r) * nb
                data = _content(c, f, r, nb)
                try:
                    wr = cl.iwrite(p, off, data)
                    wr.wait(60.0)
                except ServiceQueueFull:
                    with lat_mu:
                        rejected[0] += 1
                    continue
                got = cl.read(p, off, nb, timeout=60.0)
                if not np.array_equal(got, data):
                    raise AssertionError(
                        f"echo mismatch client {c} round {r}"
                    )
                with lat_mu:
                    if wr.latency is not None:
                        latencies[tenant].append(wr.latency)
        except BaseException as exc:  # noqa: BLE001 - collected
            with lat_mu:
                errors.append(exc)

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=client_main, args=(c,),
                         name=f"client-{c}")
        for c in range(nclients)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    wall = time.perf_counter() - t0

    # Byte-identity vs the serialized image, through the service.
    mismatches = 0
    verifier = ServiceClient(server, tenants[0])
    for p in paths:
        want = expected[p]
        if not want.size:
            continue
        got = verifier.read(p, 0, want.size, timeout=60.0)
        mismatches += int(np.count_nonzero(got != want))

    result = SoakResult(
        ok=not errors and mismatches == 0,
        requests=nclients * rounds * 2,
        rejected=rejected[0],
        bytes_moved=sum(
            t.stats.bytes_written + t.stats.bytes_read
            for t in server.admission.tenants()
        ),
        wall_seconds=wall,
        latencies={t: sorted(v) for t, v in latencies.items()},
        tenant_stats={
            t.name: t.stats.snapshot()
            for t in server.admission.tenants()
        },
        server=server.counters.snapshot(),
        mismatches=mismatches,
    )
    if errors:
        if own_server:
            server.stop(drain=False)
        raise errors[0]
    if own_server:
        server.stop()
    return result

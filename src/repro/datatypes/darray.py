"""``MPI_Type_create_darray`` — distributed-array datatypes.

Implements the MPI standard's darray constructor for HPF-style block,
cyclic and cyclic(k) distributions over a cartesian process grid.  BTIO
variants and many I/O kernels build their fileviews this way; the paper
lists "more complex filetypes like multi-dimensional arrays" as the very
workloads whose handling listless I/O accelerates.

The construction follows the reference algorithm in the MPI standard
(MPI-2.2 §13.4.2): per dimension, the slice owned by this process is
expressed as a (h)vector of the type built for the faster-varying
dimensions, then the whole thing is positioned and resized to the full
array extent.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.datatypes.base import Datatype
from repro.datatypes.constructors import at_offset, contiguous, hvector, resized
from repro.datatypes.subarray import ORDER_C, ORDER_FORTRAN
from repro.errors import DatatypeError

__all__ = [
    "darray",
    "DISTRIBUTE_BLOCK",
    "DISTRIBUTE_CYCLIC",
    "DISTRIBUTE_NONE",
    "DISTRIBUTE_DFLT_DARG",
]

DISTRIBUTE_BLOCK = "block"
DISTRIBUTE_CYCLIC = "cyclic"
DISTRIBUTE_NONE = "none"
#: Sentinel for the default distribution argument.
DISTRIBUTE_DFLT_DARG = -1


def _block_slices(gsize: int, nprocs: int, coord: int, darg: int):
    """Return (count, blocklen of each piece, element offsets) for a BLOCK
    distribution of ``gsize`` elements over ``nprocs`` processes."""
    if darg == DISTRIBUTE_DFLT_DARG:
        blk = (gsize + nprocs - 1) // nprocs
    else:
        blk = darg
        if blk * nprocs < gsize:
            raise DatatypeError(
                f"block size {blk} too small for {gsize} elements on "
                f"{nprocs} processes"
            )
    start = coord * blk
    mylen = min(blk, gsize - start)
    if mylen <= 0:
        return []
    return [(start, mylen)]


def _cyclic_slices(gsize: int, nprocs: int, coord: int, darg: int):
    """Pieces for a CYCLIC(k) distribution, as (start, length) pairs."""
    k = 1 if darg == DISTRIBUTE_DFLT_DARG else darg
    if k <= 0:
        raise DatatypeError(f"cyclic block size must be positive, got {k}")
    pieces = []
    start = coord * k
    while start < gsize:
        pieces.append((start, min(k, gsize - start)))
        start += nprocs * k
    return pieces


def darray(
    size: int,
    rank: int,
    gsizes: Sequence[int],
    distribs: Sequence[str],
    dargs: Sequence[int],
    psizes: Sequence[int],
    base: Datatype,
    order: str = ORDER_C,
) -> Datatype:
    """Create the datatype describing rank ``rank``'s portion of a
    distributed ``len(gsizes)``-dimensional array.

    Parameters mirror ``MPI_Type_create_darray``: global sizes, per-
    dimension distribution kinds/arguments, and the process-grid shape
    ``psizes`` with ``prod(psizes) == size``.
    """
    ndims = len(gsizes)
    if not (len(distribs) == len(dargs) == len(psizes) == ndims):
        raise DatatypeError("darray argument arrays must have equal rank")
    prod = 1
    for p in psizes:
        if p <= 0:
            raise DatatypeError("psizes entries must be positive")
        prod *= p
    if prod != size:
        raise DatatypeError(f"prod(psizes)={prod} != size={size}")
    if not (0 <= rank < size):
        raise DatatypeError(f"rank {rank} outside [0, {size})")
    if order not in (ORDER_C, ORDER_FORTRAN):
        raise DatatypeError(f"unknown order {order!r}")

    # Cartesian coordinates of `rank` in the process grid (C row-major).
    coords: List[int] = [0] * ndims
    r = rank
    for d in range(ndims - 1, -1, -1):
        coords[d] = r % psizes[d]
        r //= psizes[d]

    if order == ORDER_FORTRAN:
        gsizes = list(reversed(gsizes))
        distribs = list(reversed(distribs))
        dargs = list(reversed(dargs))
        psizes = list(reversed(psizes))
        coords = list(reversed(coords))

    esize = base.extent
    strides = [esize] * ndims
    for d in range(ndims - 2, -1, -1):
        strides[d] = strides[d + 1] * gsizes[d + 1]

    def pieces_for(d: int):
        kind = distribs[d]
        if kind == DISTRIBUTE_NONE:
            return [(0, gsizes[d])]
        if kind == DISTRIBUTE_BLOCK:
            return _block_slices(gsizes[d], psizes[d], coords[d], dargs[d])
        if kind == DISTRIBUTE_CYCLIC:
            return _cyclic_slices(gsizes[d], psizes[d], coords[d], dargs[d])
        raise DatatypeError(f"unknown distribution {kind!r}")

    def _uniform(pieces):
        """Uniform piece length + arithmetic starts → (step, length)."""
        if len(pieces) < 2:
            return None
        lens = {ln for _, ln in pieces}
        if len(lens) != 1:
            return None
        starts_ = [st for st, _ in pieces]
        step = starts_[1] - starts_[0]
        if any(b - a != step for a, b in zip(starts_, starts_[1:])):
            return None
        return step, pieces[0][1]

    # Build from the innermost dimension outward.  Regularly spaced
    # pieces (the cyclic(k) common case) become a single hvector so the
    # dataloop stays shallow; only truly irregular ownership falls back
    # to a struct of placed pieces.
    t: Datatype = base
    for d in range(ndims - 1, -1, -1):
        pieces = pieces_for(d)
        if not pieces:
            # This process owns nothing: an empty type with full extent.
            t = resized(contiguous(0, base), 0, strides[0] * gsizes[0])
            return t
        stride = strides[d]
        innermost = d == ndims - 1 and t is base

        def piece_type(ln):
            if innermost:
                return contiguous(ln, base)
            return hvector(ln, 1, stride, t)

        uni = _uniform(pieces)
        if uni is not None:
            step, ln = uni
            t = at_offset(
                hvector(len(pieces), 1, step * stride, piece_type(ln)),
                pieces[0][0] * stride,
            )
        else:
            parts = [
                at_offset(piece_type(ln), st * stride)
                for st, ln in pieces
            ]
            if len(parts) == 1:
                t = parts[0]
            else:
                from repro.datatypes.constructors import struct as _struct

                t = _struct([1] * len(parts), [0] * len(parts), parts)
        # Normalize extent so the next (outer) dimension strides correctly.
        t = resized(t, 0, stride * gsizes[d])

    return t

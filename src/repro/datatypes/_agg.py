"""Aggregate algebra for datatype construction.

Every derived quantity of a datatype (size, bounds, Nblock, monotonicity,
sequence-order first/last data byte) is computed compositionally from its
children at construction time.  This module provides that algebra as pure
functions over small :class:`Agg` records, so each constructor in
:mod:`repro.datatypes.constructors` stays a thin wrapper.

The key point — and the reason the listless approach wins — is that these
computations are O(descriptor) in the constructor arguments, *never*
O(Nblock): a ``vector(10**6, 1, 2, DOUBLE)`` aggregates in constant time
even though its ol-list has a million entries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.datatypes.base import Datatype

__all__ = ["Agg", "agg_of", "shift", "tile", "seq_concat"]


@dataclass(frozen=True)
class Agg:
    """Derived quantities of one placed instance of a datatype."""

    size: int
    true_lb: int
    true_ub: int
    explicit_lb: Optional[int]
    explicit_ub: Optional[int]
    depth: int
    num_blocks: int
    monotonic: bool
    #: first data byte / one-past-last data byte in type-map order
    seq_first: Optional[int]
    seq_last_end: Optional[int]

    @property
    def has_data(self) -> bool:
        return self.size > 0


def agg_of(dt: Datatype) -> Agg:
    """Read a datatype's aggregate record."""
    return Agg(
        size=dt.size,
        true_lb=dt.true_lb,
        true_ub=dt.true_ub,
        explicit_lb=dt.explicit_lb,
        explicit_ub=dt.explicit_ub,
        depth=dt.depth,
        num_blocks=dt.num_blocks,
        monotonic=dt.is_monotonic,
        seq_first=dt.seq_first,
        seq_last_end=dt.seq_last_end,
    )


def shift(a: Agg, disp: int) -> Agg:
    """Aggregate of the same type placed at byte displacement ``disp``."""
    return replace(
        a,
        true_lb=a.true_lb + disp,
        true_ub=a.true_ub + disp,
        explicit_lb=None if a.explicit_lb is None else a.explicit_lb + disp,
        explicit_ub=None if a.explicit_ub is None else a.explicit_ub + disp,
        seq_first=None if a.seq_first is None else a.seq_first + disp,
        seq_last_end=None if a.seq_last_end is None else a.seq_last_end + disp,
    )


def _minmax_end(a: Agg, count: int, stride: int) -> tuple[int, int]:
    """Data bounds of ``count`` copies of ``a`` placed at ``i * stride``."""
    lo0, hi0 = a.true_lb, a.true_ub
    lo1 = lo0 + (count - 1) * stride
    hi1 = hi0 + (count - 1) * stride
    return min(lo0, lo1), max(hi0, hi1)


def tile(a: Agg, count: int, stride: int) -> Agg:
    """Aggregate of ``count`` copies of ``a`` placed at ``i * stride``.

    This is the O(1) uniform-repetition rule used by contiguous, vector and
    hvector constructors.  Consecutive-instance block merging is uniform:
    either every boundary merges or none does.
    """
    if count == 0:
        return Agg(0, 0, 0, None, None, a.depth + 1, 0, True, None, None)
    if count == 1:
        return replace(a, depth=a.depth + 1)

    true_lb, true_ub = _minmax_end(a, count, stride)

    exp_lb = exp_ub = None
    if a.explicit_lb is not None:
        exp_lb = min(a.explicit_lb, a.explicit_lb + (count - 1) * stride)
    if a.explicit_ub is not None:
        exp_ub = max(a.explicit_ub, a.explicit_ub + (count - 1) * stride)

    if not a.has_data:
        nb, seq_first, seq_last = 0, None, None
        mono = True
    else:
        # Boundary between instance i and i+1 merges iff the last data byte
        # of i is immediately followed by the first data byte of i+1.
        merges = a.seq_last_end == stride + a.seq_first
        nb = count * a.num_blocks - (count - 1 if merges else 0)
        seq_first = a.seq_first
        seq_last = a.seq_last_end + (count - 1) * stride
        # Monotonic iff each instance is monotonic and instances do not
        # interleave or run backwards.
        mono = a.monotonic and stride >= 0 and a.true_ub <= a.true_lb + stride
        # Special case: fully overlapping zero stride of a single block is
        # still non-monotonic for count > 1 (same byte repeated).
    return Agg(
        size=a.size * count,
        true_lb=true_lb,
        true_ub=true_ub,
        explicit_lb=exp_lb,
        explicit_ub=exp_ub,
        depth=a.depth + 1,
        num_blocks=nb,
        monotonic=mono,
        seq_first=seq_first,
        seq_last_end=seq_last,
    )


def seq_concat(parts: Sequence[Agg], depth_bump: int = 1) -> Agg:
    """Aggregate of a sequence of already-placed children in type-map order.

    Used by indexed/struct constructors; O(len(parts)) — the descriptor
    length, not Nblock.
    """
    size = 0
    true_lb: Optional[int] = None
    true_ub: Optional[int] = None
    exp_lb: Optional[int] = None
    exp_ub: Optional[int] = None
    depth = 1
    nb = 0
    mono = True
    seq_first: Optional[int] = None
    seq_last: Optional[int] = None
    prev_data: Optional[Agg] = None

    for p in parts:
        size += p.size
        depth = max(depth, p.depth)
        if p.has_data:
            if true_lb is None:
                true_lb, true_ub = p.true_lb, p.true_ub
            else:
                true_lb = min(true_lb, p.true_lb)
                true_ub = max(true_ub, p.true_ub)
            nb += p.num_blocks
            if prev_data is not None:
                if prev_data.seq_last_end == p.seq_first:
                    nb -= 1
                # Sorted, non-overlapping sequence required for monotonic.
                if prev_data.true_ub > p.true_lb:
                    mono = False
            if not p.monotonic:
                mono = False
            if seq_first is None:
                seq_first = p.seq_first
            seq_last = p.seq_last_end
            prev_data = p
        if p.explicit_lb is not None:
            exp_lb = p.explicit_lb if exp_lb is None else min(exp_lb, p.explicit_lb)
        if p.explicit_ub is not None:
            exp_ub = p.explicit_ub if exp_ub is None else max(exp_ub, p.explicit_ub)

    if true_lb is None:
        true_lb = true_ub = 0
    return Agg(
        size=size,
        true_lb=true_lb,
        true_ub=true_ub,
        explicit_lb=exp_lb,
        explicit_ub=exp_ub,
        depth=depth + depth_bump,
        num_blocks=nb,
        monotonic=mono,
        seq_first=seq_first,
        seq_last_end=seq_last,
    )

"""Datatype introspection, analogous to ``MPI_Type_get_envelope`` and
``MPI_Type_get_contents``.

Used by the compact fileview serialization (:mod:`repro.core.fileview_cache`)
to ship a datatype's *constructor tree* — not its flattened block list —
between processes, and by tests to assert structural equality.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.datatypes.base import Datatype
from repro.datatypes.basic import BasicType, BoundsMarker, basic_by_name
from repro.datatypes.constructors import (
    ContiguousType,
    HIndexedType,
    HVectorType,
    ResizedType,
    StructType,
)
from repro.errors import DatatypeError

__all__ = ["get_envelope", "get_contents", "to_tree", "from_tree"]


def get_envelope(dt: Datatype) -> str:
    """Return the combiner name of the outermost constructor."""
    return dt._combiner()


def get_contents(dt: Datatype) -> Dict[str, Any]:
    """Return the constructor arguments of the outermost constructor."""
    if isinstance(dt, BasicType):
        return {"name": dt.name}
    if isinstance(dt, BoundsMarker):
        return {"name": dt.name}
    if isinstance(dt, ContiguousType):
        return {"count": dt.count, "base": dt.base}
    if isinstance(dt, HVectorType):
        return {
            "count": dt.count,
            "blocklen": dt.blocklen,
            "stride": dt.stride,
            "base": dt.base,
        }
    if isinstance(dt, HIndexedType):
        return {
            "blocklens": dt.blocklens,
            "displs": dt.displs,
            "base": dt.base,
        }
    if isinstance(dt, StructType):
        return {
            "blocklens": dt.blocklens,
            "displs": dt.displs,
            "types": dt.types,
        }
    if isinstance(dt, ResizedType):
        return {"base": dt.base, "lb": dt.new_lb, "extent": dt.new_extent}
    raise DatatypeError(f"cannot decode {type(dt).__name__}")


def to_tree(dt: Datatype) -> Any:
    """Serialize a datatype to a nested tuple tree (JSON-able, hashable).

    This is the "compact representation" the listless implementation
    exchanges once per fileview: its length is proportional to the
    *constructor tree*, independent of Nblock.
    """
    if isinstance(dt, (BasicType, BoundsMarker)):
        return ("basic", dt.name)
    if isinstance(dt, ContiguousType):
        return ("contiguous", dt.count, to_tree(dt.base))
    if isinstance(dt, HVectorType):
        return ("hvector", dt.count, dt.blocklen, dt.stride, to_tree(dt.base))
    if isinstance(dt, HIndexedType):
        return ("hindexed", dt.blocklens, dt.displs, to_tree(dt.base))
    if isinstance(dt, StructType):
        return (
            "struct",
            dt.blocklens,
            dt.displs,
            tuple(to_tree(t) for t in dt.types),
        )
    if isinstance(dt, ResizedType):
        return ("resized", dt.new_lb, dt.new_extent, to_tree(dt.base))
    raise DatatypeError(f"cannot serialize {type(dt).__name__}")


def from_tree(tree: Any) -> Datatype:
    """Rebuild a datatype from :func:`to_tree` output."""
    kind = tree[0]
    if kind == "basic":
        return basic_by_name(tree[1])
    if kind == "contiguous":
        return ContiguousType(tree[1], from_tree(tree[2]))
    if kind == "hvector":
        return HVectorType(tree[1], tree[2], tree[3], from_tree(tree[4]))
    if kind == "hindexed":
        return HIndexedType(tree[1], tree[2], from_tree(tree[3]))
    if kind == "struct":
        return StructType(tree[1], tree[2], [from_tree(t) for t in tree[3]])
    if kind == "resized":
        return ResizedType(from_tree(tree[3]), tree[1], tree[2])
    raise DatatypeError(f"cannot deserialize node kind {kind!r}")


def tree_nbytes(tree: Any) -> int:
    """Approximate wire size in bytes of a serialized tree.

    Counts 8 bytes per integer and per tag, mirroring how the paper counts
    16 bytes per ol-list tuple; used by the cost accounting to compare the
    one-time fileview exchange against per-access ol-list exchange.
    """
    if isinstance(tree, (tuple, list)):
        return sum(tree_nbytes(t) for t in tree)
    return 8

"""Predefined (basic) MPI datatypes and the MPI-1 bounds markers.

Basic types carry only a name and a byte width.  The pack/unpack machinery
treats all data as raw bytes, so two basic types of the same width are
interchangeable for I/O purposes; the distinct names exist for
introspection and for building NumPy views in examples.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

from repro.datatypes.base import Datatype
from repro.errors import DatatypeError

__all__ = [
    "BasicType",
    "BoundsMarker",
    "basic_by_name",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "FLOAT",
    "DOUBLE",
    "LONG_DOUBLE",
    "COMPLEX",
    "DOUBLE_COMPLEX",
    "PACKED",
    "LB",
    "UB",
]


class BasicType(Datatype):
    """A predefined MPI type: ``nbytes`` contiguous bytes."""

    __slots__ = ("name", "nbytes", "np_dtype")

    def __init__(self, name: str, nbytes: int, np_dtype: str | None = None):
        if nbytes <= 0:
            raise DatatypeError(f"basic type {name!r} needs positive width")
        super().__init__(
            size=nbytes,
            true_lb=0,
            true_ub=nbytes,
            explicit_lb=None,
            explicit_ub=None,
            depth=1,
            num_blocks=1,
            contiguous=True,
            monotonic=True,
        )
        self.name = name
        self.nbytes = nbytes
        #: name of the matching NumPy dtype, if any (for user convenience)
        self.np_dtype = np_dtype

    def typemap(self) -> Iterator[Tuple[int, int]]:
        yield (0, self.nbytes)

    def children(self) -> Sequence[Datatype]:
        return ()

    def _combiner(self) -> str:
        return f"basic:{self.name}"

    def __repr__(self) -> str:
        return f"<MPI_{self.name}>"


class BoundsMarker(Datatype):
    """``MPI_LB`` / ``MPI_UB``: zero-size markers that pin a bound.

    A marker occupies no data bytes; placing it in a ``struct`` at
    displacement *d* forces the containing type's lb (or ub) to *d* (the
    minimum over LB markers / maximum over UB markers when several occur).
    """

    __slots__ = ("name", "is_lb")

    def __init__(self, name: str, is_lb: bool):
        super().__init__(
            size=0,
            true_lb=0,
            true_ub=0,
            explicit_lb=0 if is_lb else None,
            explicit_ub=None if is_lb else 0,
            depth=1,
            num_blocks=0,
            contiguous=False,
            monotonic=True,
        )
        self.name = name
        self.is_lb = is_lb

    def typemap(self) -> Iterator[Tuple[int, int]]:
        return iter(())

    def children(self) -> Sequence[Datatype]:
        return ()

    def _combiner(self) -> str:
        return f"marker:{self.name}"

    def __repr__(self) -> str:
        return f"<MPI_{self.name}>"


#: Predefined types with conventional ILP64-ish widths.
BYTE = BasicType("BYTE", 1, "uint8")
CHAR = BasicType("CHAR", 1, "int8")
SHORT = BasicType("SHORT", 2, "int16")
INT = BasicType("INT", 4, "int32")
LONG = BasicType("LONG", 8, "int64")
LONG_LONG = BasicType("LONG_LONG", 8, "int64")
FLOAT = BasicType("FLOAT", 4, "float32")
DOUBLE = BasicType("DOUBLE", 8, "float64")
LONG_DOUBLE = BasicType("LONG_DOUBLE", 16, None)
COMPLEX = BasicType("COMPLEX", 8, "complex64")
DOUBLE_COMPLEX = BasicType("DOUBLE_COMPLEX", 16, "complex128")
PACKED = BasicType("PACKED", 1, "uint8")

LB = BoundsMarker("LB", is_lb=True)
UB = BoundsMarker("UB", is_lb=False)

_BY_NAME: Dict[str, Datatype] = {
    t.name: t
    for t in (
        BYTE,
        CHAR,
        SHORT,
        INT,
        LONG,
        LONG_LONG,
        FLOAT,
        DOUBLE,
        LONG_DOUBLE,
        COMPLEX,
        DOUBLE_COMPLEX,
        PACKED,
        LB,
        UB,
    )
}


def basic_by_name(name: str) -> Datatype:
    """Look up a predefined type by its MPI-style name (e.g. ``"DOUBLE"``).

    Raises :class:`~repro.errors.DatatypeError` for unknown names.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatatypeError(f"unknown basic type {name!r}") from None

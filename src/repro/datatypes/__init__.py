"""MPI derived-datatype engine.

This subpackage implements the subset of the MPI datatype machinery that
MPI-IO's non-contiguous file access relies on, from scratch:

* predefined (basic) types — :data:`BYTE`, :data:`CHAR`, :data:`INT`,
  :data:`FLOAT`, :data:`DOUBLE`, ... plus the MPI-1 bounds markers
  :data:`LB` and :data:`UB`;
* type constructors — :func:`contiguous`, :func:`vector`, :func:`hvector`,
  :func:`indexed`, :func:`hindexed`, :func:`indexed_block`, :func:`struct`,
  :func:`resized`, :func:`subarray`, :func:`darray`, :func:`dup`;
* type introspection — :func:`repro.datatypes.decode.get_envelope` and
  :func:`repro.datatypes.decode.get_contents`;
* validation of MPI-IO restrictions on etypes/filetypes
  (:mod:`repro.datatypes.validation`);
* a deliberately slow, obviously correct type-map based pack/unpack used as
  the oracle in the test suite (:mod:`repro.datatypes.packing`).

A :class:`Datatype` is an immutable tree.  The *type map* of a datatype is
the ordered sequence of ``(byte_offset, byte_length)`` pairs of its basic
elements; ``size`` is the total data bytes, ``extent = ub - lb`` the span it
occupies when tiled, possibly adjusted with LB/UB markers or
:func:`resized`.
"""

from repro.datatypes.base import Datatype
from repro.datatypes.basic import (
    BYTE,
    CHAR,
    SHORT,
    INT,
    LONG,
    LONG_LONG,
    FLOAT,
    DOUBLE,
    LONG_DOUBLE,
    COMPLEX,
    DOUBLE_COMPLEX,
    LB,
    UB,
    PACKED,
    BasicType,
    BoundsMarker,
    basic_by_name,
)
from repro.datatypes.constructors import (
    contiguous,
    vector,
    hvector,
    indexed,
    hindexed,
    indexed_block,
    hindexed_block,
    struct,
    resized,
    at_offset,
    dup,
)
from repro.datatypes.subarray import subarray, ORDER_C, ORDER_FORTRAN
from repro.datatypes.darray import (
    darray,
    DISTRIBUTE_BLOCK,
    DISTRIBUTE_CYCLIC,
    DISTRIBUTE_NONE,
    DISTRIBUTE_DFLT_DARG,
)
from repro.datatypes.validation import (
    validate_etype,
    validate_filetype,
    is_monotonic_nonoverlapping,
)
from repro.datatypes.packing import pack_typemap, unpack_typemap, typemap_blocks

__all__ = [
    "Datatype",
    "BasicType",
    "BoundsMarker",
    "basic_by_name",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "FLOAT",
    "DOUBLE",
    "LONG_DOUBLE",
    "COMPLEX",
    "DOUBLE_COMPLEX",
    "LB",
    "UB",
    "PACKED",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "hindexed_block",
    "struct",
    "resized",
    "at_offset",
    "dup",
    "subarray",
    "ORDER_C",
    "ORDER_FORTRAN",
    "darray",
    "DISTRIBUTE_BLOCK",
    "DISTRIBUTE_CYCLIC",
    "DISTRIBUTE_NONE",
    "DISTRIBUTE_DFLT_DARG",
    "validate_etype",
    "validate_filetype",
    "is_monotonic_nonoverlapping",
    "pack_typemap",
    "unpack_typemap",
    "typemap_blocks",
]

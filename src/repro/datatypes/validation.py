"""Validation of MPI-IO restrictions on etypes and filetypes.

The MPI standard constrains the datatypes usable in a fileview
(MPI-2 §9.1.1 / the paper's §3.2.3): displacements must be non-negative
and, for indexed/struct-built types, monotonically non-decreasing; a byte
of the file may be accessed at most once per instance.  The mergeview
contiguity shortcut of listless I/O (paper §3.2.3) is *only* correct under
these restrictions, so the I/O layer enforces them at ``set_view`` time.
"""

from __future__ import annotations

from repro.datatypes.base import Datatype
from repro.errors import DatatypeError

__all__ = ["validate_etype", "validate_filetype", "is_monotonic_nonoverlapping"]


def is_monotonic_nonoverlapping(dt: Datatype) -> bool:
    """True if the type map is offset-sorted and visits each byte at most
    once.  Computed structurally at construction time (O(1) here)."""
    return dt.is_monotonic


def validate_etype(etype: Datatype) -> None:
    """Check that ``etype`` is a legal elementary type for a fileview.

    An etype must be non-empty, have non-negative displacements and a
    non-negative, monotonic layout, and its extent must cover its data so
    repeated etypes do not interleave.
    """
    if etype.size <= 0:
        raise DatatypeError("etype must contain data")
    if etype.true_lb < 0 or etype.lb < 0:
        raise DatatypeError("etype has negative displacements")
    if not etype.is_monotonic:
        raise DatatypeError("etype type map must be monotonic")
    if etype.extent < etype.true_ub - etype.lb:
        raise DatatypeError("etype extent must cover its data")


def validate_filetype(filetype: Datatype, etype: Datatype) -> None:
    """Check that ``filetype`` is legal for a fileview over ``etype``.

    Beyond the monotonicity/non-negativity rules, a filetype must be built
    from whole etypes: its size must be a multiple of the etype size so
    that file offsets in etype units always land on a data boundary.
    """
    if filetype.size <= 0:
        raise DatatypeError("filetype must contain data")
    if filetype.true_lb < 0 or filetype.lb < 0:
        raise DatatypeError("filetype has negative displacements")
    if not filetype.is_monotonic:
        raise DatatypeError(
            "filetype type map must be monotonically non-decreasing and "
            "must not access any file byte twice"
        )
    if filetype.size % etype.size != 0:
        raise DatatypeError(
            f"filetype size {filetype.size} is not a multiple of etype "
            f"size {etype.size}"
        )
    if filetype.extent < filetype.true_ub - filetype.lb:
        raise DatatypeError(
            "filetype extent must cover its data (tiled instances would "
            "otherwise overlap)"
        )

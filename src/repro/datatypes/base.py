"""Core :class:`Datatype` tree representation.

A datatype is an immutable node in a tree.  Every node knows:

``size``
    number of actual data bytes in one instance of the type (sum of basic
    element lengths in the type map);
``lb`` / ``ub``
    lower and upper bound.  Without explicit markers these are the minimum
    byte offset and the maximum ``offset + length`` over the type map.  The
    MPI-1 ``MPI_LB`` / ``MPI_UB`` markers and :func:`~repro.datatypes.
    constructors.resized` override them;
``extent``
    ``ub - lb`` — the stride used when the type is tiled with a repetition
    count (and when a filetype tiles a file);
``true_lb`` / ``true_ub``
    bounds of the actual data, ignoring markers;
``depth``
    depth of the constructor tree (basic types have depth 1).  The paper's
    complexity claims for flattening-on-the-fly are stated in terms of this
    depth;
``num_blocks``
    the number *Nblock* of maximal contiguous byte runs in the type map of a
    single instance — the length the explicit ol-list flattening produces.

Unlike real MPI we do not round ``ub`` up to an alignment epsilon; this
keeps the byte arithmetic exact and is irrelevant to the algorithms under
study (the paper's types are byte/double based and naturally aligned).

Subclasses live in :mod:`repro.datatypes.basic` and
:mod:`repro.datatypes.constructors`; this module only defines the common
machinery so that the constructor modules stay small.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import DatatypeError

__all__ = ["Datatype"]


class Datatype:
    """Abstract base of all datatype tree nodes.

    Instances are immutable; all derived quantities are computed at
    construction time, so constructing a datatype is the only O(tree) cost
    and every later query is O(1).
    """

    __slots__ = (
        "_size",
        "_lb",
        "_ub",
        "_true_lb",
        "_true_ub",
        "_explicit_lb",
        "_explicit_ub",
        "_depth",
        "_num_blocks",
        "_contiguous",
        "_monotonic",
        "_seq_first",
        "_seq_last_end",
        # Lazily attached caches (set by repro.core / repro.flatten; kept
        # here so immutable datatype objects can own their derived
        # representations without global registries).
        "_dataloop_cache",
        "_ollist_cache",
        "_top_loop_cache",
    )

    def __init__(
        self,
        *,
        size: int,
        true_lb: int,
        true_ub: int,
        explicit_lb: Optional[int],
        explicit_ub: Optional[int],
        depth: int,
        num_blocks: int,
        contiguous: bool,
        monotonic: bool,
        seq_first: Optional[int] = None,
        seq_last_end: Optional[int] = None,
    ) -> None:
        if size < 0:
            raise DatatypeError(f"negative datatype size {size}")
        self._size = size
        self._true_lb = true_lb
        self._true_ub = true_ub
        self._explicit_lb = explicit_lb
        self._explicit_ub = explicit_ub
        self._lb = true_lb if explicit_lb is None else explicit_lb
        self._ub = true_ub if explicit_ub is None else explicit_ub
        self._depth = depth
        self._num_blocks = num_blocks
        self._contiguous = contiguous
        self._monotonic = monotonic
        # Offsets of the first data byte and one past the last data byte in
        # *type map order* (may differ from true_lb/true_ub for
        # non-monotonic types).  None when the type holds no data.
        if size > 0:
            self._seq_first = true_lb if seq_first is None else seq_first
            self._seq_last_end = true_ub if seq_last_end is None else seq_last_end
        else:
            self._seq_first = None
            self._seq_last_end = None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of actual data bytes in one instance of the type."""
        return self._size

    @property
    def lb(self) -> int:
        """Lower bound (explicit marker/resized bound if present)."""
        return self._lb

    @property
    def ub(self) -> int:
        """Upper bound (explicit marker/resized bound if present)."""
        return self._ub

    @property
    def extent(self) -> int:
        """``ub - lb`` — tiling stride for repetition counts."""
        return self._ub - self._lb

    @property
    def true_lb(self) -> int:
        """Lowest byte offset holding actual data."""
        return self._true_lb

    @property
    def true_ub(self) -> int:
        """One past the highest byte offset holding actual data."""
        return self._true_ub

    @property
    def true_extent(self) -> int:
        """``true_ub - true_lb``."""
        return self._true_ub - self._true_lb

    @property
    def explicit_lb(self) -> Optional[int]:
        """Marker-derived lower bound, or None if no marker is present."""
        return self._explicit_lb

    @property
    def explicit_ub(self) -> Optional[int]:
        """Marker-derived upper bound, or None if no marker is present."""
        return self._explicit_ub

    @property
    def depth(self) -> int:
        """Depth of the constructor tree (basic types: 1)."""
        return self._depth

    @property
    def num_blocks(self) -> int:
        """*Nblock*: maximal contiguous byte runs per instance."""
        return self._num_blocks

    @property
    def is_contiguous(self) -> bool:
        """True if one instance is a single run covering ``[lb, ub)``.

        A contiguous type packs/unpacks as a plain memcpy even when tiled,
        because its extent equals its size and the data fills it.
        """
        return self._contiguous

    @property
    def seq_first(self) -> Optional[int]:
        """Offset of the first data byte in type-map order (None if empty)."""
        return self._seq_first

    @property
    def seq_last_end(self) -> Optional[int]:
        """One past the last data byte in type-map order (None if empty)."""
        return self._seq_last_end

    @property
    def is_monotonic(self) -> bool:
        """True if the type map is sorted by offset and non-overlapping.

        Required of etypes and filetypes by the MPI-IO standard (negative
        displacements are additionally forbidden — see
        :func:`repro.datatypes.validation.validate_filetype`).
        """
        return self._monotonic

    # ------------------------------------------------------------------
    # Structural interface implemented by subclasses
    # ------------------------------------------------------------------
    def typemap(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(byte_offset, byte_length)`` per basic element, in type
        map order.

        This is the semantic ground truth of the datatype and is
        exponential-safe only for small types; production code paths use
        the flattened ol-list (:mod:`repro.flatten`) or the dataloop
        (:mod:`repro.core`) instead.
        """
        raise NotImplementedError

    def children(self) -> Sequence["Datatype"]:
        """Direct child datatypes, for tree walks (empty for basic)."""
        raise NotImplementedError

    def _combiner(self) -> str:
        """Name of the MPI constructor that produced this node."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def flat_blocks(self) -> Iterator[Tuple[int, int]]:
        """Yield the maximal contiguous ``(offset, length)`` runs of one
        instance, i.e. the entries an explicit flattening would produce.

        For monotonic types this coalesces the type map stream; for
        non-monotonic memtypes the runs are emitted in type-map order and
        only *adjacent-in-sequence* pieces are merged, matching what a
        list-based pack loop would do.
        """
        cur_off = None
        cur_len = 0
        for off, length in self.typemap():
            if length == 0:
                continue
            if cur_off is not None and off == cur_off + cur_len:
                cur_len += length
            else:
                if cur_off is not None:
                    yield (cur_off, cur_len)
                cur_off, cur_len = off, length
        if cur_off is not None:
            yield (cur_off, cur_len)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self._combiner()} size={self.size} extent={self.extent} "
            f"lb={self.lb} nblocks={self.num_blocks} depth={self.depth}>"
        )

    # Datatypes are compared by identity; equality of structure is checked
    # in tests via decode.get_contents / typemaps.
    __hash__ = object.__hash__

"""MPI datatype constructors.

Implements the constructor set used by MPI-IO applications:

==================  =====================================================
:func:`contiguous`   ``MPI_Type_contiguous``
:func:`vector`       ``MPI_Type_vector`` (stride in elements)
:func:`hvector`      ``MPI_Type_create_hvector`` (stride in bytes)
:func:`indexed`      ``MPI_Type_indexed`` (displacements in elements)
:func:`hindexed`     ``MPI_Type_create_hindexed`` (displacements in bytes)
:func:`indexed_block`/:func:`hindexed_block`
                     ``MPI_Type_create_indexed_block`` and friends
:func:`struct`       ``MPI_Type_create_struct``
:func:`resized`      ``MPI_Type_create_resized``
:func:`at_offset`    convenience: one instance placed at a displacement
:func:`dup`          ``MPI_Type_dup``
==================  =====================================================

All constructors run in time proportional to the *descriptor* length (the
argument arrays), never to the number of contiguous blocks the type
describes — the distinction at the heart of the paper.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.datatypes._agg import Agg, agg_of, seq_concat, shift, tile
from repro.datatypes.base import Datatype
from repro.errors import DatatypeError

__all__ = [
    "ContiguousType",
    "HVectorType",
    "HIndexedType",
    "StructType",
    "ResizedType",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "hindexed_block",
    "struct",
    "resized",
    "at_offset",
    "dup",
]


def _check_count(name: str, value: int) -> None:
    if value < 0:
        raise DatatypeError(f"{name} must be non-negative, got {value}")


def _init_from_agg(dt: Datatype, agg: Agg) -> None:
    """Finish construction of a derived type from its aggregate record."""
    lb = agg.true_lb if agg.explicit_lb is None else agg.explicit_lb
    ub = agg.true_ub if agg.explicit_ub is None else agg.explicit_ub
    contiguous_ = (
        agg.size > 0
        and agg.num_blocks == 1
        and lb == agg.true_lb
        and ub == agg.true_ub
        and agg.size == ub - lb
    )
    Datatype.__init__(
        dt,
        size=agg.size,
        true_lb=agg.true_lb,
        true_ub=agg.true_ub,
        explicit_lb=agg.explicit_lb,
        explicit_ub=agg.explicit_ub,
        depth=agg.depth,
        num_blocks=agg.num_blocks,
        contiguous=contiguous_,
        monotonic=agg.monotonic,
        seq_first=agg.seq_first,
        seq_last_end=agg.seq_last_end,
    )


class ContiguousType(Datatype):
    """``count`` back-to-back instances of ``base`` (stride = base extent)."""

    __slots__ = ("count", "base")

    def __init__(self, count: int, base: Datatype):
        _check_count("count", count)
        self.count = count
        self.base = base
        _init_from_agg(self, tile(agg_of(base), count, base.extent))

    def typemap(self) -> Iterator[Tuple[int, int]]:
        ext = self.base.extent
        for i in range(self.count):
            off = i * ext
            for o, n in self.base.typemap():
                yield (off + o, n)

    def children(self) -> Sequence[Datatype]:
        return (self.base,)

    def _combiner(self) -> str:
        return "contiguous"


class HVectorType(Datatype):
    """``count`` blocks of ``blocklen`` base elements, ``stride`` bytes apart."""

    __slots__ = ("count", "blocklen", "stride", "base")

    def __init__(self, count: int, blocklen: int, stride: int, base: Datatype):
        _check_count("count", count)
        _check_count("blocklen", blocklen)
        self.count = count
        self.blocklen = blocklen
        self.stride = stride
        self.base = base
        block = tile(agg_of(base), blocklen, base.extent)
        _init_from_agg(self, tile(block, count, stride))

    def typemap(self) -> Iterator[Tuple[int, int]]:
        ext = self.base.extent
        for i in range(self.count):
            start = i * self.stride
            for j in range(self.blocklen):
                off = start + j * ext
                for o, n in self.base.typemap():
                    yield (off + o, n)

    def children(self) -> Sequence[Datatype]:
        return (self.base,)

    def _combiner(self) -> str:
        return "hvector"


class HIndexedType(Datatype):
    """Blocks of base elements at explicit byte displacements."""

    __slots__ = ("blocklens", "displs", "base")

    def __init__(
        self, blocklens: Sequence[int], displs: Sequence[int], base: Datatype
    ):
        if len(blocklens) != len(displs):
            raise DatatypeError(
                f"blocklens ({len(blocklens)}) and displs ({len(displs)}) "
                "must have equal length"
            )
        for b in blocklens:
            _check_count("blocklen", b)
        self.blocklens = tuple(int(b) for b in blocklens)
        self.displs = tuple(int(d) for d in displs)
        self.base = base
        base_agg = agg_of(base)
        ext = base.extent
        parts = [
            shift(tile(base_agg, b, ext), d)
            for b, d in zip(self.blocklens, self.displs)
        ]
        _init_from_agg(self, seq_concat(parts, depth_bump=0))

    def typemap(self) -> Iterator[Tuple[int, int]]:
        ext = self.base.extent
        for b, d in zip(self.blocklens, self.displs):
            for j in range(b):
                off = d + j * ext
                for o, n in self.base.typemap():
                    yield (off + o, n)

    def children(self) -> Sequence[Datatype]:
        return (self.base,)

    def _combiner(self) -> str:
        return "hindexed"


class StructType(Datatype):
    """General sequence of ``(blocklen, byte displacement, type)`` fields."""

    __slots__ = ("blocklens", "displs", "types")

    def __init__(
        self,
        blocklens: Sequence[int],
        displs: Sequence[int],
        types: Sequence[Datatype],
    ):
        if not (len(blocklens) == len(displs) == len(types)):
            raise DatatypeError(
                "struct requires equal-length blocklens, displs and types"
            )
        for b in blocklens:
            _check_count("blocklen", b)
        self.blocklens = tuple(int(b) for b in blocklens)
        self.displs = tuple(int(d) for d in displs)
        self.types = tuple(types)
        parts = [
            shift(tile(agg_of(t), b, t.extent), d)
            for b, d, t in zip(self.blocklens, self.displs, self.types)
        ]
        _init_from_agg(self, seq_concat(parts, depth_bump=0))

    def typemap(self) -> Iterator[Tuple[int, int]]:
        for b, d, t in zip(self.blocklens, self.displs, self.types):
            ext = t.extent
            for j in range(b):
                off = d + j * ext
                for o, n in t.typemap():
                    yield (off + o, n)

    def children(self) -> Sequence[Datatype]:
        return self.types

    def _combiner(self) -> str:
        return "struct"


class ResizedType(Datatype):
    """``base`` with overridden lower bound and extent."""

    __slots__ = ("base", "new_lb", "new_extent")

    def __init__(self, base: Datatype, new_lb: int, new_extent: int):
        self.base = base
        self.new_lb = int(new_lb)
        self.new_extent = int(new_extent)
        a = agg_of(base)
        _init_from_agg(
            self,
            Agg(
                size=a.size,
                true_lb=a.true_lb,
                true_ub=a.true_ub,
                explicit_lb=self.new_lb,
                explicit_ub=self.new_lb + self.new_extent,
                depth=a.depth,  # resizing adds no traversal depth
                num_blocks=a.num_blocks,
                monotonic=a.monotonic,
                seq_first=a.seq_first,
                seq_last_end=a.seq_last_end,
            ),
        )

    def typemap(self) -> Iterator[Tuple[int, int]]:
        return self.base.typemap()

    def children(self) -> Sequence[Datatype]:
        return (self.base,)

    def _combiner(self) -> str:
        return "resized"


# ----------------------------------------------------------------------
# Factory functions (the public constructor API)
# ----------------------------------------------------------------------
def contiguous(count: int, base: Datatype) -> Datatype:
    """``MPI_Type_contiguous``: ``count`` back-to-back copies of ``base``."""
    return ContiguousType(count, base)


def vector(count: int, blocklen: int, stride: int, base: Datatype) -> Datatype:
    """``MPI_Type_vector``: stride counted in *elements* of ``base``."""
    return HVectorType(count, blocklen, stride * base.extent, base)


def hvector(count: int, blocklen: int, stride: int, base: Datatype) -> Datatype:
    """``MPI_Type_create_hvector``: stride counted in *bytes*."""
    return HVectorType(count, blocklen, stride, base)


def indexed(
    blocklens: Sequence[int], displs: Sequence[int], base: Datatype
) -> Datatype:
    """``MPI_Type_indexed``: displacements counted in elements of ``base``."""
    ext = base.extent
    return HIndexedType(blocklens, [d * ext for d in displs], base)


def hindexed(
    blocklens: Sequence[int], displs: Sequence[int], base: Datatype
) -> Datatype:
    """``MPI_Type_create_hindexed``: displacements counted in bytes."""
    return HIndexedType(blocklens, displs, base)


def indexed_block(
    blocklen: int, displs: Sequence[int], base: Datatype
) -> Datatype:
    """``MPI_Type_create_indexed_block``: equal blocklen, element displs."""
    ext = base.extent
    return HIndexedType(
        [blocklen] * len(displs), [d * ext for d in displs], base
    )


def hindexed_block(
    blocklen: int, displs: Sequence[int], base: Datatype
) -> Datatype:
    """``MPI_Type_create_hindexed_block``: equal blocklen, byte displs."""
    return HIndexedType([blocklen] * len(displs), displs, base)


def struct(
    blocklens: Sequence[int],
    displs: Sequence[int],
    types: Sequence[Datatype],
) -> Datatype:
    """``MPI_Type_create_struct`` (also accepts MPI-1 LB/UB markers)."""
    return StructType(blocklens, displs, types)


def resized(base: Datatype, lb: int, extent: int) -> Datatype:
    """``MPI_Type_create_resized``: override lower bound and extent."""
    return ResizedType(base, lb, extent)


def at_offset(base: Datatype, disp: int) -> Datatype:
    """One instance of ``base`` placed at byte displacement ``disp``.

    Convenience wrapper equal to ``struct([1], [disp], [base])``; used by
    :func:`repro.datatypes.subarray.subarray` to position the sub-block
    inside the full-array extent.
    """
    return StructType([1], [disp], [base])


def dup(base: Datatype) -> Datatype:
    """``MPI_Type_dup``: a distinct handle with identical behaviour.

    Datatypes here are immutable, so duplication wraps the base in a
    1-element contiguous, which has the exact same type map and bounds.
    """
    if base.explicit_lb is None and base.explicit_ub is None:
        return ContiguousType(1, base)
    # contiguous(1, t) preserves markers through the aggregate algebra too,
    # but keep the original node to preserve combiner introspection depth.
    return ResizedType(base, base.lb, base.extent)

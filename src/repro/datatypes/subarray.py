"""``MPI_Type_create_subarray``.

Builds the datatype describing an n-dimensional sub-block of an
n-dimensional array, as used by BTIO to describe both the memory layout of
a process' cells and the fileview of the shared solution file.

The resulting type has lower bound 0 and extent equal to the *full* array
(so tiling the filetype across the file advances by whole arrays), with the
sub-block's data placed at the correct interior offsets — exactly the
semantics of the MPI standard.
"""

from __future__ import annotations

from typing import Sequence

from repro.datatypes.base import Datatype
from repro.datatypes.constructors import at_offset, contiguous, hvector, resized
from repro.errors import DatatypeError

__all__ = ["subarray", "ORDER_C", "ORDER_FORTRAN"]

#: Row-major ordering (last dimension contiguous), like C arrays.
ORDER_C = "C"
#: Column-major ordering (first dimension contiguous), like Fortran arrays.
ORDER_FORTRAN = "F"


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    base: Datatype,
    order: str = ORDER_C,
) -> Datatype:
    """Create the datatype for a sub-block of an n-D array of ``base``.

    Parameters
    ----------
    sizes
        full array shape (elements of ``base`` per dimension).
    subsizes
        shape of the sub-block.
    starts
        index of the sub-block's first element in each dimension.
    base
        element datatype.
    order
        :data:`ORDER_C` or :data:`ORDER_FORTRAN`.
    """
    ndims = len(sizes)
    if not (len(subsizes) == len(starts) == ndims):
        raise DatatypeError("sizes, subsizes and starts must have equal rank")
    if ndims == 0:
        raise DatatypeError("subarray requires at least one dimension")
    if order not in (ORDER_C, ORDER_FORTRAN):
        raise DatatypeError(f"unknown order {order!r}")
    for d in range(ndims):
        if sizes[d] <= 0:
            raise DatatypeError(f"sizes[{d}] must be positive")
        if subsizes[d] <= 0:
            raise DatatypeError(f"subsizes[{d}] must be positive")
        if starts[d] < 0 or starts[d] + subsizes[d] > sizes[d]:
            raise DatatypeError(
                f"sub-block [{starts[d]}, {starts[d] + subsizes[d]}) exceeds "
                f"dimension {d} of size {sizes[d]}"
            )

    if order == ORDER_FORTRAN:
        # Treat as C order on reversed dimensions.
        sizes = list(reversed(sizes))
        subsizes = list(reversed(subsizes))
        starts = list(reversed(starts))

    esize = base.extent
    # Byte stride of one index step in each (C-ordered) dimension.
    strides = [esize] * ndims
    for d in range(ndims - 2, -1, -1):
        strides[d] = strides[d + 1] * sizes[d + 1]

    # Innermost (fastest-varying) dimension is contiguous in base elements.
    t: Datatype = contiguous(subsizes[-1], base)
    for d in range(ndims - 2, -1, -1):
        t = hvector(subsizes[d], 1, strides[d], t)

    offset = sum(starts[d] * strides[d] for d in range(ndims))
    if offset != 0:
        t = at_offset(t, offset)
    full_extent = strides[0] * sizes[0]
    return resized(t, 0, full_extent)

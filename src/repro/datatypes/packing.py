"""Reference (oracle) pack/unpack built directly on the type map.

These functions walk the full type map element by element.  They are
deliberately simple and slow — O(number of basic elements) Python-level
work — and serve two purposes:

* the *semantic oracle* for the test suite: both the list-based engine and
  the flattening-on-the-fly engine must move exactly the bytes these
  functions move;
* the behaviour of ``MPI_Pack`` / ``MPI_Unpack`` for whole-type operations
  in examples.

They must never appear on a benchmarked code path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datatypes.base import Datatype
from repro.errors import DatatypeError

__all__ = ["typemap_blocks", "pack_typemap", "unpack_typemap", "packed_size"]


def typemap_blocks(dt: Datatype, count: int = 1) -> List[Tuple[int, int]]:
    """Materialize the coalesced ``(offset, length)`` runs of ``count``
    tiled instances of ``dt`` (type-map order, adjacent runs merged).

    Small-type/test use only: cost and memory are O(Nblock * count).
    """
    out: List[Tuple[int, int]] = []
    ext = dt.extent
    for i in range(count):
        base = i * ext
        for off, ln in dt.flat_blocks():
            o = base + off
            if out and out[-1][0] + out[-1][1] == o:
                out[-1] = (out[-1][0], out[-1][1] + ln)
            else:
                out.append((o, ln))
    return out


def packed_size(dt: Datatype, count: int = 1) -> int:
    """Total data bytes of ``count`` instances (``MPI_Pack_size``)."""
    return dt.size * count


def pack_typemap(
    src: np.ndarray, count: int, dt: Datatype, origin: int = 0
) -> np.ndarray:
    """Pack ``count`` instances of ``dt`` read from ``src`` at byte offset
    ``origin`` into a new contiguous uint8 array.

    ``origin`` plays the role of the buffer base address: offsets in the
    type map are relative to it, and ``dt.lb`` may be negative for
    marker-adjusted types.
    """
    src = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
    out = np.empty(dt.size * count, dtype=np.uint8)
    pos = 0
    ext = dt.extent
    for i in range(count):
        base = origin + i * ext
        for off, ln in dt.typemap():
            start = base + off
            if start < 0 or start + ln > src.size:
                raise DatatypeError(
                    f"pack reads [{start}, {start + ln}) outside source "
                    f"buffer of {src.size} bytes"
                )
            out[pos : pos + ln] = src[start : start + ln]
            pos += ln
    return out


def unpack_typemap(
    packed: np.ndarray,
    dst: np.ndarray,
    count: int,
    dt: Datatype,
    origin: int = 0,
) -> None:
    """Unpack ``count`` instances of ``dt`` from contiguous ``packed`` into
    ``dst`` (written in place) at byte offset ``origin``."""
    packed = np.ascontiguousarray(packed).view(np.uint8).reshape(-1)
    if packed.size < dt.size * count:
        raise DatatypeError(
            f"packed buffer has {packed.size} bytes, need {dt.size * count}"
        )
    dstb = dst.view(np.uint8).reshape(-1)
    pos = 0
    ext = dt.extent
    for i in range(count):
        base = origin + i * ext
        for off, ln in dt.typemap():
            start = base + off
            if start < 0 or start + ln > dstb.size:
                raise DatatypeError(
                    f"unpack writes [{start}, {start + ln}) outside "
                    f"destination buffer of {dstb.size} bytes"
                )
            dstb[start : start + ln] = packed[pos : pos + ln]
            pos += ln

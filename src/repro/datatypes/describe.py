"""Human-readable rendering of datatype trees.

``describe(dt)`` produces an indented tree with per-node geometry —
useful when debugging fileviews and in the CLI's ``inspect`` command:

>>> from repro import datatypes as dt
>>> print(describe(dt.vector(4, 2, 5, dt.DOUBLE)))  # doctest: +SKIP
hvector(count=4, blocklen=2, stride=40B)  [size=64B extent=136B blocks=4]
└─ DOUBLE  [8B]
"""

from __future__ import annotations

from typing import List

from repro.datatypes.base import Datatype
from repro.datatypes.basic import BasicType, BoundsMarker
from repro.datatypes.constructors import (
    ContiguousType,
    HIndexedType,
    HVectorType,
    ResizedType,
    StructType,
)

__all__ = ["describe"]


def _fmt_seq(values, limit: int = 6) -> str:
    vals = list(values)
    if len(vals) <= limit:
        return str(vals)
    head = ", ".join(str(v) for v in vals[: limit - 1])
    return f"[{head}, ... {len(vals)} total]"


def _header(t: Datatype) -> str:
    if isinstance(t, BasicType):
        return f"{t.name}  [{t.nbytes}B]"
    if isinstance(t, BoundsMarker):
        return f"{t.name} marker"
    geom = (
        f"[size={t.size}B extent={t.extent}B blocks={t.num_blocks}"
        f"{'' if t.is_monotonic else ' non-monotonic'}]"
    )
    if isinstance(t, ContiguousType):
        return f"contiguous(count={t.count})  {geom}"
    if isinstance(t, HVectorType):
        return (
            f"hvector(count={t.count}, blocklen={t.blocklen}, "
            f"stride={t.stride}B)  {geom}"
        )
    if isinstance(t, HIndexedType):
        return (
            f"hindexed(blocklens={_fmt_seq(t.blocklens)}, "
            f"displs={_fmt_seq(t.displs)})  {geom}"
        )
    if isinstance(t, StructType):
        return (
            f"struct(blocklens={_fmt_seq(t.blocklens)}, "
            f"displs={_fmt_seq(t.displs)})  {geom}"
        )
    if isinstance(t, ResizedType):
        return f"resized(lb={t.new_lb}, extent={t.new_extent})  {geom}"
    return f"{type(t).__name__}  {geom}"


def _describe(t: Datatype, prefix: str, is_last: bool,
              out: List[str], top: bool) -> None:
    connector = "" if top else ("└─ " if is_last else "├─ ")
    out.append(prefix + connector + _header(t))
    children = list(t.children())
    child_prefix = prefix if top else prefix + ("   " if is_last
                                                else "│  ")
    # Deduplicate repeated identical children (struct of N same types).
    seen_ids = []
    uniq = []
    for c in children:
        if id(c) not in seen_ids:
            seen_ids.append(id(c))
            uniq.append(c)
    for i, c in enumerate(uniq):
        reps = sum(1 for x in children if x is c)
        if reps > 1:
            out.append(
                child_prefix
                + ("└─ " if i == len(uniq) - 1 else "├─ ")
                + f"(x{reps} identical children)"
            )
            _describe(c, child_prefix + ("   " if i == len(uniq) - 1
                                         else "│  "),
                      True, out, top=False)
        else:
            _describe(c, child_prefix, i == len(uniq) - 1, out,
                      top=False)


def describe(t: Datatype) -> str:
    """Render the constructor tree of ``t`` as indented text."""
    out: List[str] = []
    _describe(t, "", True, out, top=True)
    return "\n".join(out)

"""Public pack/unpack API (``MPI_Pack`` / ``MPI_Unpack`` analogues).

Message-passing codes use the same datatype machinery as MPI-IO to
serialize non-contiguous buffers; this module exposes it directly:

* :func:`pack_size` — bytes needed to pack ``count`` instances
  (``MPI_Pack_size``; exact here, no envelope slack).
* :func:`pack` — append typed data to a position in an outbuf
  (``MPI_Pack``); implemented with flattening-on-the-fly, so packing is
  gather-based and costs O(bytes + tree depth).
* :func:`unpack` — the inverse (``MPI_Unpack``).
* :class:`PackBuffer` — a convenience incremental packer mirroring the
  position-threading calling convention of the MPI functions.

Unlike the MPI functions these do not require packing *whole* type
instances per call at the buffer level — but the public functions keep
MPI semantics (whole ``(count, datatype)`` units per call) and the
partial-segment capability stays internal to the I/O engines.
"""

from __future__ import annotations

import numpy as np

from repro.core.ff_pack import ff_pack, ff_unpack
from repro.datatypes.base import Datatype
from repro.errors import DatatypeError

__all__ = ["pack_size", "pack", "unpack", "PackBuffer"]


def pack_size(count: int, datatype: Datatype) -> int:
    """Bytes required to pack ``count`` instances of ``datatype``."""
    if count < 0:
        raise DatatypeError(f"negative count {count}")
    return count * datatype.size


def pack(
    inbuf: np.ndarray,
    count: int,
    datatype: Datatype,
    outbuf: np.ndarray,
    position: int,
    origin: int = 0,
) -> int:
    """Pack ``count`` instances from ``inbuf`` into ``outbuf`` at byte
    ``position``; returns the new position (``MPI_Pack``)."""
    n = pack_size(count, datatype)
    out = outbuf.view(np.uint8).reshape(-1)
    if position < 0 or position + n > out.size:
        raise DatatypeError(
            f"outbuf too small: need [{position}, {position + n}) in "
            f"{out.size} bytes"
        )
    copied = ff_pack(
        inbuf, count, datatype, 0, out[position:], n, origin=origin
    )
    assert copied == n
    return position + n


def unpack(
    inbuf: np.ndarray,
    position: int,
    outbuf: np.ndarray,
    count: int,
    datatype: Datatype,
    origin: int = 0,
) -> int:
    """Unpack ``count`` instances from ``inbuf`` at byte ``position`` into
    typed ``outbuf``; returns the new position (``MPI_Unpack``)."""
    n = pack_size(count, datatype)
    src = inbuf.view(np.uint8).reshape(-1)
    if position < 0 or position + n > src.size:
        raise DatatypeError(
            f"inbuf too small: need [{position}, {position + n}) in "
            f"{src.size} bytes"
        )
    copied = ff_unpack(
        src[position:], n, outbuf, count, datatype, 0, origin=origin
    )
    assert copied == n
    return position + n


class PackBuffer:
    """Incremental packer: repeated :meth:`add` calls append typed data,
    :meth:`data` yields the packed bytes, and :meth:`unpacker` iterates
    them back out in the same order.

    >>> import numpy as np
    >>> from repro import datatypes as dt
    >>> pb = PackBuffer(64)
    >>> pb.add(np.arange(4, dtype=np.int32), 4, dt.INT)
    >>> pb.position
    16
    """

    def __init__(self, capacity: int) -> None:
        self._buf = np.zeros(capacity, dtype=np.uint8)
        self.position = 0

    def add(self, inbuf: np.ndarray, count: int,
            datatype: Datatype, origin: int = 0) -> None:
        """Append ``count`` instances of ``datatype`` from ``inbuf``."""
        self.position = pack(
            inbuf, count, datatype, self._buf, self.position, origin
        )

    def data(self) -> np.ndarray:
        """The packed bytes written so far (a view)."""
        return self._buf[: self.position]

    def unpacker(self) -> "_Unpacker":
        """An iterator-style unpacker over the packed bytes."""
        return _Unpacker(self.data())


class _Unpacker:
    """Positional unpacker companion to :class:`PackBuffer`."""

    def __init__(self, data: np.ndarray) -> None:
        self._data = data
        self.position = 0

    def take(self, outbuf: np.ndarray, count: int,
             datatype: Datatype, origin: int = 0) -> None:
        """Unpack the next ``count`` instances into ``outbuf``."""
        self.position = unpack(
            self._data, self.position, outbuf, count, datatype, origin
        )

    @property
    def remaining(self) -> int:
        return self._data.size - self.position

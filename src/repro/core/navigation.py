"""``ff_size`` / ``ff_extent`` — datatype navigation (paper §3.2.1).

The two functions mirror the MPI/SX internals::

    MPIR_Type_ff_extent(dtype, skipbytes, size)   -> extent
    MPIR_Type_ff_size(dtype, skipbytes, extent)   -> size

With a fileview, file accesses may start and end *inside* a filetype (the
access granularity is the etype, not the whole type), so the I/O layer
constantly converts between

* **size space** — data bytes in the contiguous (packed) representation,
  which is how file pointers in etype units count, and
* **extent space** — byte positions in the (virtual) tiled buffer, which
  is how absolute file offsets count.

Both directions cost O(depth · log k) on the compiled dataloop (divmod per
vector level, binary search per irregular level) — independent of
repetition counts, Nblock, and of the magnitude of ``skipbytes``.  The
list-based engine answers the same questions by walking its ol-list
linearly (:meth:`repro.flatten.ol_list.OLList.find_position`), which is
the O(Nblock/2)-per-access overhead the paper eliminates.
"""

from __future__ import annotations

from repro.core.ff_pack import top_dataloop
from repro.datatypes.base import Datatype
from repro.errors import FFError

__all__ = ["ff_extent", "ff_size", "ext_of_size", "size_of_ext"]


def ext_of_size(dt: Datatype, size_offset: int, count: int = 1,
                end: bool = False) -> int:
    """Extent position of the ``size_offset``-th data byte of ``count``
    tiled instances of ``dt``.

    With ``end=True`` the position *after* data byte ``size_offset - 1``
    is returned instead (the two differ when the boundary falls between
    two blocks: start-of-next vs end-of-previous).
    """
    loop = top_dataloop(dt, count)
    if loop is None:
        return 0
    if not 0 <= size_offset <= loop.size:
        raise FFError(
            f"size offset {size_offset} outside [0, {loop.size}]"
        )
    return loop.ext_of_size(size_offset, end)


def size_of_ext(dt: Datatype, extent_offset: int, count: int = 1) -> int:
    """Number of data bytes of ``count`` tiled instances of ``dt`` located
    strictly before extent position ``extent_offset`` (clamped)."""
    loop = top_dataloop(dt, count)
    if loop is None:
        return 0
    return loop.size_of_ext(extent_offset)


def ff_extent(dt: Datatype, skipbytes: int, size: int, count: int = 1) -> int:
    """Extent of a virtual typed buffer holding ``size`` data bytes after
    ``skipbytes`` skipped data bytes (``MPIR_Type_ff_extent``).

    Returns the distance from the displacement reached after skipping to
    the end of the last unpacked byte — the amount by which a file/buffer
    pointer advances when ``size`` bytes are consumed at that position.
    """
    if size == 0:
        return 0
    start = ext_of_size(dt, skipbytes, count, end=False)
    stop = ext_of_size(dt, skipbytes + size, count, end=True)
    return stop - start


def ff_size(dt: Datatype, skipbytes: int, extent: int, count: int = 1) -> int:
    """Data bytes contained in a virtual typed buffer of byte extent
    ``extent`` beginning after ``skipbytes`` skipped data bytes
    (``MPIR_Type_ff_size``)."""
    if extent <= 0:
        return 0
    start = ext_of_size(dt, skipbytes, count, end=False)
    return size_of_ext(dt, start + extent, count) - skipbytes

"""``ff_pack`` / ``ff_unpack`` — flattening-on-the-fly (paper §3.1).

The two functions mirror the MPI/SX internal interface::

    MPIR_ff_pack(srcbuf, count, datatype, skipbytes, packbuf, packsize, copied)
    MPIR_ff_unpack(packbuf, packsize, dstbuf, count, datatype, skipbytes, copied)

Both move data between a (possibly) non-contiguous typed buffer and a
contiguous pack buffer, supporting *partial* operation: ``skipbytes`` data
bytes (counted in the contiguous representation) are skipped before the
operation, and at most ``packsize`` bytes are moved.  The returned byte
count lets the caller iterate over bounded segments when the pack buffer
cannot hold the whole message — the situation that always arises for file
buffers (paper §3.2.2).

Both functions are "efficient" in the paper's sense: the time is
proportional to the bytes moved plus a low-order term in the depth of the
datatype tree; it does not depend on ``skipbytes`` or on any repetition
counts inside the datatype.  All copying happens in the NumPy
gather/scatter kernels of :mod:`repro.core.gather`, outside any traversal.
"""

from __future__ import annotations

import numpy as np

from repro.core import blockprog
from repro.core.dataloop import Dataloop, _vector, compile_dataloop
from repro.core.gather import gather_blocks, scatter_blocks
from repro.datatypes.base import Datatype
from repro.errors import FFError
from repro.obs import trace

__all__ = ["ff_pack", "ff_unpack", "top_dataloop"]


def top_dataloop(dt: Datatype, count: int) -> Dataloop | None:
    """Dataloop of ``count`` tiled instances of ``dt``.

    The count dimension is one more vector level; for ``count == 1`` the
    instance loop is returned directly.  O(1) beyond the cached instance
    compilation.  Memoized per ``(datatype, count)``: the compiled
    block-program cache keys on loop *identity*, so repeated calls must
    return the same loop object, not a structurally equal rebuild.
    """
    loop = compile_dataloop(dt)
    if loop is None or count == 0:
        return None
    if count == 1:
        return loop
    cache = getattr(dt, "_top_loop_cache", None)
    if cache is None:
        cache = {}
        dt._top_loop_cache = cache
    top = cache.get(count)
    if top is None:
        # _vector applies the standard normalizations (contiguous
        # collapse, perfect-nesting fusion), so e.g. count x contiguous
        # stays a single memcpy-able leaf.
        top = _vector(count, dt.extent, loop)
        if len(cache) >= 8:  # a handful of counts per type in practice
            cache.clear()
        cache[count] = top
    return top


def _as_bytes(buf: np.ndarray, writeable: bool) -> np.ndarray:
    """Flat uint8 view of a buffer without copying."""
    b = buf.view(np.uint8).reshape(-1)
    if writeable and not b.flags.writeable:
        raise FFError("destination buffer is read-only")
    return b


def ff_pack(
    srcbuf: np.ndarray,
    count: int,
    datatype: Datatype,
    skipbytes: int,
    packbuf: np.ndarray,
    packsize: int,
    origin: int = 0,
    use_programs: bool | None = None,
    owner=None,
) -> int:
    """Pack typed data from ``srcbuf`` into contiguous ``packbuf``.

    Parameters
    ----------
    srcbuf
        the user buffer; byte offset ``origin`` corresponds to the
        datatype origin (offsets of the type map are relative to it).
    count, datatype
        the data is ``count`` tiled instances of ``datatype``.
    skipbytes
        data bytes (contiguous representation) to skip before packing.
    packbuf, packsize
        destination and its capacity; at most ``packsize`` bytes are
        written, starting at ``packbuf[0]``.
    use_programs
        override the process-wide block-program toggle for this call
        (``None`` — follow :func:`repro.core.blockprog.enabled`).
    owner
        file identity keying compiled programs (the engine passes its
        file's key so two files never alias cached programs; ``None``
        for file-independent callers).

    Returns the number of bytes actually copied (0 at end of data).
    """
    if skipbytes < 0 or packsize < 0:
        raise FFError("skipbytes and packsize must be non-negative")
    loop = top_dataloop(datatype, count)
    if loop is None:
        return 0
    total = loop.size
    n = min(packsize, total - skipbytes)
    if n <= 0:
        return 0
    # Manual trace stamps: this is the regression-sensitive hot loop, so
    # the off path must cost one global read, nothing more — and a
    # category filter excluding ``ff`` must cost only the set probe.
    on = trace.TRACE_ON
    if on is not True and on:
        on = "ff" in on
    t0 = trace.now() if on else 0.0
    src = _as_bytes(srcbuf, writeable=False)
    dst = _as_bytes(packbuf, writeable=True)
    hit = blockprog.program_for(loop, skipbytes, skipbytes + n,
                                use_programs, owner=owner)
    if hit is not None:
        prog, base = hit
        copied = prog.gather(src, base + origin, dst, 0)
    else:
        offs, lens = loop.blocks_range(skipbytes, skipbytes + n)
        copied = gather_blocks(src, offs + origin, lens, dst, 0)
    if copied != n:
        raise FFError(
            f"ff_pack traversal corruption: copied {copied} of {n} bytes "
            f"(skipbytes={skipbytes}, count={count})"
        )
    if on:
        trace.TRACER.add("ff.pack", t0, bytes=n,
                         program=hit is not None)
    return n


def ff_unpack(
    packbuf: np.ndarray,
    packsize: int,
    dstbuf: np.ndarray,
    count: int,
    datatype: Datatype,
    skipbytes: int,
    origin: int = 0,
    use_programs: bool | None = None,
    owner=None,
) -> int:
    """Unpack contiguous ``packbuf`` into typed ``dstbuf``.

    The inverse of :func:`ff_pack`; at most ``packsize`` bytes are read
    from ``packbuf`` and placed at the type-map positions following
    ``skipbytes`` skipped data bytes.  Returns bytes copied.
    """
    if skipbytes < 0 or packsize < 0:
        raise FFError("skipbytes and packsize must be non-negative")
    loop = top_dataloop(datatype, count)
    if loop is None:
        return 0
    total = loop.size
    n = min(packsize, total - skipbytes)
    if n <= 0:
        return 0
    on = trace.TRACE_ON
    if on is not True and on:
        on = "ff" in on
    t0 = trace.now() if on else 0.0
    src = _as_bytes(packbuf, writeable=False)
    dst = _as_bytes(dstbuf, writeable=True)
    hit = blockprog.program_for(loop, skipbytes, skipbytes + n,
                                use_programs, owner=owner)
    if hit is not None:
        prog, base = hit
        copied = prog.scatter(dst, base + origin, src, 0)
    else:
        offs, lens = loop.blocks_range(skipbytes, skipbytes + n)
        copied = scatter_blocks(dst, offs + origin, lens, src, 0)
    if copied != n:
        raise FFError(
            f"ff_unpack traversal corruption: copied {copied} of {n} "
            f"bytes (skipbytes={skipbytes}, count={count})"
        )
    if on:
        trace.TRACER.add("ff.unpack", t0, bytes=n,
                         program=hit is not None)
    return n

"""Listless I/O core — the paper's contribution.

This subpackage implements *flattening-on-the-fly* (Träff et al. [14] in
the paper) and the datatype-navigation machinery of listless I/O:

* :mod:`repro.core.dataloop` — compilation of a datatype tree into a
  compact, non-recursive loop program.  Compilation cost is proportional
  to the *constructor tree*, never to Nblock.
* :mod:`repro.core.ff_pack` — ``ff_pack`` / ``ff_unpack``: pack or unpack
  an arbitrary byte range (``skipbytes``, limited by ``packsize``) of a
  typed buffer, with all copying done by NumPy gather/scatter kernels (the
  stand-in for the SX vector gather/scatter hardware).
* :mod:`repro.core.navigation` — ``ff_size`` / ``ff_extent``: size↔extent
  conversion at arbitrary offsets, O(depth · log k) per call.
* :mod:`repro.core.segments` — bounded-segment iteration used when the
  pack buffer cannot hold the whole access.
* :mod:`repro.core.fileview_cache` — the compact fileview representation
  exchanged once per ``set_view`` (paper §3.2.3, "fileview caching").
* :mod:`repro.core.mergeview` — the merged view of all processes'
  filetypes and the single-call collective-write contiguity check.
* :mod:`repro.core.blockprog` — compiled block programs: cached,
  relocatable ``blocks_range`` results with precompiled gather/scatter
  dispatch, reused across the periodic windows of sieving and two-phase
  loops (see ``docs/kernels.md``).
"""

from repro.core.blockprog import (
    BlockProgram,
    blockprog_stats,
    blocks_range_cached,
    program_for,
)
from repro.core.dataloop import Dataloop, compile_dataloop
from repro.core.ff_pack import ff_pack, ff_unpack
from repro.core.gather import kernel_path_counts
from repro.core.navigation import (
    ff_extent,
    ff_size,
    ext_of_size,
    size_of_ext,
)
from repro.core.segments import iter_segments
from repro.core.fileview_cache import FileviewCache, CompactFileview
from repro.core.mergeview import build_mergeview, Mergeview

__all__ = [
    "BlockProgram",
    "blockprog_stats",
    "blocks_range_cached",
    "program_for",
    "kernel_path_counts",
    "Dataloop",
    "compile_dataloop",
    "ff_pack",
    "ff_unpack",
    "ff_extent",
    "ff_size",
    "ext_of_size",
    "size_of_ext",
    "iter_segments",
    "FileviewCache",
    "CompactFileview",
    "build_mergeview",
    "Mergeview",
]

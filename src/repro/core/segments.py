"""Bounded-segment iteration over typed data.

When the contiguous pack buffer cannot hold a whole access (the normal
case: file buffers and communication buffers are fixed-size), the listless
engine iterates ``ff_pack``/``ff_unpack`` over consecutive byte segments.
This module centralizes that loop so engine code reads declaratively.
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = ["iter_segments"]


def iter_segments(
    total: int, seg_size: int, start: int = 0
) -> Iterator[Tuple[int, int]]:
    """Yield ``(offset, nbytes)`` covering ``[start, total)`` in chunks of
    at most ``seg_size`` bytes.

    >>> list(iter_segments(10, 4))
    [(0, 4), (4, 4), (8, 2)]
    """
    if seg_size <= 0:
        raise ValueError(f"segment size must be positive, got {seg_size}")
    pos = start
    while pos < total:
        n = min(seg_size, total - pos)
        yield (pos, n)
        pos += n

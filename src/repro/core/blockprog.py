"""Compiled block programs: cached, relocatable traversal results.

Flattening-on-the-fly never stores an O(Nblock) representation — but the
original ``ff_pack``/``ff_unpack`` re-ran the full :meth:`Dataloop.
blocks_range` traversal and rebuilt fresh ``(offsets, lengths)`` arrays
on *every* call, even when the same range shape recurs on every window
of a sieving or two-phase loop.  This module exploits the same datatype
*periodicity* that makes listless navigation O(depth): a range query on
a periodic loop depends on its absolute position only through a scalar
translation.

A :class:`BlockProgram` is the compiled form of one range query:

* the **canonical descriptor** — ``(offsets, lengths)`` for the range
  reduced to its canonical position: whole periods of every enclosing
  :class:`~repro.core.dataloop.DLVector` are dropped and struct fields
  (:class:`~repro.core.dataloop.DLSeq`) are descended recursively, so
  nested and struct dataloops canonicalize, not just top-level vectors;
* a **precompiled kernel dispatch** — which gather/scatter path fires
  (single slice / small loop / strided view / big-block loop / index
  gather), with the per-call derivations (``tolist`` conversions, the
  flat byte-index array of the fancy paths) computed once and reused.

Steady-state pack/unpack of a recurring window shape is then O(1)
Python-level setup — translate the cached program by a scalar base —
plus one bulk gather/scatter.  Programs are cached per loop object in a
bounded LRU (the loop itself is held weakly, so dropping a datatype
drops its programs); the cache is additionally cleared whenever a
fileview is replaced (:meth:`~repro.plan.planner.Planner.invalidate`),
mirroring the plan LRU's view-epoch rule.

Toggling: the environment variable ``REPRO_BLOCKPROG=0`` (or ``false``/
``off``) disables the layer process-wide, and :func:`set_enabled` flips
it at runtime — benchmarks use this for A/B runs.  Per-file, the
``ff_block_programs`` hint disables program use on the listless
engine's pack/unpack path.  Counters (compiles, hits, misses,
translations) and the cache itself are scoped to the active
:class:`~repro.session.IOSession` — shared by all simulated ranks of a
world, isolated between sessions, with process-wide defaults when no
session is active — and surfaced through the metrics registry and
``repro.cli plan-dump``.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro._ctx import SESSION
from repro.core.dataloop import DLContig, DLSeq, DLVector, Dataloop
from repro.core.gather import (
    _BIG_BLOCK,
    _SMALL_N,
    active_kernel_paths,
    block_index,
)

__all__ = [
    "BlockProgram",
    "BLOCKPROG_STATS",
    "ProgramCache",
    "active_cache",
    "active_stats",
    "blockprog_stats",
    "blocks_range_cached",
    "clear",
    "enabled",
    "program_for",
    "program_for_blocks",
    "set_enabled",
]

#: Cached flat byte-index arrays cost 8 B per payload byte; above this
#: payload size the index paths would not fire anyway (the big-block
#: loop wins) and caching an index array would only burn memory.
_IDX_CAP = 1 << 20

#: Per-loop LRU bound: distinct (residue, length) shapes kept per loop.
#: Sieving/two-phase loops cycle through a handful of window shapes;
#: 64 covers them with room for boundary windows.
_MAX_PROGRAMS_PER_LOOP = 64


def _env_enabled() -> bool:
    v = os.environ.get("REPRO_BLOCKPROG", "1").strip().lower()
    return v not in ("0", "false", "off", "no", "disable", "disabled")


_enabled = _env_enabled()


def enabled() -> bool:
    """Whether the block-program layer is active process-wide."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Enable/disable the layer; returns the previous setting."""
    global _enabled
    prev = _enabled
    _enabled = bool(flag)
    return prev


class _Stats:
    """Block-program counters (one instance per session, plus the
    process-wide default)."""

    __slots__ = ("compiled", "hits", "misses", "translations", "bypasses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiled = 0
        self.hits = 0
        self.misses = 0
        self.translations = 0
        self.bypasses = 0

    def snapshot(self) -> dict:
        return {
            "blockprog_compiled": self.compiled,
            "blockprog_hits": self.hits,
            "blockprog_misses": self.misses,
            "blockprog_translations": self.translations,
            "blockprog_bypasses": self.bypasses,
        }


BLOCKPROG_STATS = _Stats()


def active_stats() -> _Stats:
    """The counters of the active :class:`~repro.session.IOSession`, or
    the process-wide defaults when no session is active."""
    s = SESSION.get(None)
    return BLOCKPROG_STATS if s is None else s.prog_stats


def blockprog_stats() -> dict:
    """Snapshot of the active context's block-program counters."""
    return active_stats().snapshot()


# Kernel kinds, decided once at compile time (matching the dispatch
# thresholds of repro.core.gather so a program fires the same kernel
# the uncompiled path would).
_K_SINGLE = 0
_K_SMALL = 1
_K_STRIDED = 2
_K_BIG = 3
_K_INDEX = 4


class BlockProgram:
    """One compiled range query: canonical blocks + kernel dispatch.

    ``offsets``/``lengths`` are the canonical descriptor (read-only
    arrays).  :meth:`gather`/:meth:`scatter` execute the program against
    a buffer with all offsets translated by a scalar ``base`` — the
    relocation that makes one program serve every period of a periodic
    access.
    """

    __slots__ = (
        "offsets",
        "lengths",
        "nbytes",
        "count",
        "_kind",
        "_off_list",
        "_len_list",
        "_first",
        "_step",
        "_start",
        "_idx",
    )

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray) -> None:
        # Own copies: programs outlive the call that compiled them, and
        # the read-only flag must never leak onto a caller's arrays.
        offsets = np.array(offsets, dtype=np.int64)
        lengths = np.array(lengths, dtype=np.int64)
        offsets.setflags(write=False)
        lengths.setflags(write=False)
        self.offsets = offsets
        self.lengths = lengths
        self.count = int(offsets.size)
        self.nbytes = int(lengths.sum()) if self.count else 0
        self._off_list = None
        self._len_list = None
        self._idx = None
        self._first = 0
        self._step = 0
        self._start = 0
        self._kind = self._compile()
        active_stats().compiled += 1

    # ------------------------------------------------------------------
    def _compile(self) -> int:
        """Pick the kernel path once; precompute what it needs."""
        n = self.count
        if n <= 1:
            return _K_SINGLE
        if n <= _SMALL_N:
            self._off_list = self.offsets.tolist()
            self._len_list = self.lengths.tolist()
            return _K_SMALL
        first = int(self.lengths[0])
        if bool((self.lengths == first).all()):
            d = np.diff(self.offsets)
            step = int(d[0])
            if bool((d == step).all()) and step >= first > 0:
                self._first = first
                self._step = step
                self._start = int(self.offsets[0])
                return _K_STRIDED
        if self.nbytes >= n * _BIG_BLOCK or self.nbytes > _IDX_CAP:
            self._off_list = self.offsets.tolist()
            self._len_list = self.lengths.tolist()
            return _K_BIG
        # Index gather/scatter with the flat byte-index array built once
        # (canonical — translated per call by the scalar base).
        self._idx = block_index(self.offsets, self.lengths)
        self._idx.setflags(write=False)
        return _K_INDEX

    # ------------------------------------------------------------------
    @property
    def kind_name(self) -> str:
        """Name of the kernel path the program compiled to."""
        return ("single", "small_loop", "strided_view", "big_block",
                "fancy_index")[self._kind]

    @property
    def index_nbytes(self) -> int:
        """Size of the precomputed flat byte-index array (0 unless the
        program compiled to the fancy-index kernel)."""
        return int(self._idx.nbytes) if self._idx is not None else 0

    def describe(self) -> str:
        """One-line shape summary, for ``plan-dump``."""
        s = f"{self.kind_name}(k={self.count}, nbytes={self.nbytes}"
        if self._idx is not None:
            s += f", idx={self._idx.size}"
        return s + ")"

    # ------------------------------------------------------------------
    def materialize(self, base: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(offsets + base, lengths)`` — the relocated descriptor."""
        active_stats().translations += 1
        if base == 0:
            return self.offsets, self.lengths
        return self.offsets + base, self.lengths

    # ------------------------------------------------------------------
    def gather(self, src: np.ndarray, base: int, out: np.ndarray,
               out_pos: int = 0) -> int:
        """Copy the program's blocks (translated by ``base``) of ``src``
        into ``out`` at ``out_pos``; returns bytes copied."""
        active_stats().translations += 1
        paths = active_kernel_paths()
        kind = self._kind
        if kind == _K_SINGLE:
            paths.single += 1
            if self.count == 0:
                return 0
            o = int(self.offsets[0]) + base
            ln = int(self.lengths[0])
            out[out_pos : out_pos + ln] = src[o : o + ln]
            return ln
        if kind == _K_STRIDED:
            paths.strided_view += 1
            view = np.lib.stride_tricks.as_strided(
                src[self._start + base :],
                shape=(self.count, self._first),
                strides=(self._step, 1),
                writeable=False,
            )
            out[out_pos : out_pos + self.nbytes] = view.reshape(-1)
            return self.nbytes
        if kind == _K_INDEX:
            paths.fancy_index += 1
            idx = self._idx if base == 0 else self._idx + base
            out[out_pos : out_pos + self.nbytes] = src[idx]
            return self.nbytes
        paths.small_loop += 1 if kind == _K_SMALL else 0
        paths.big_block += 1 if kind == _K_BIG else 0
        pos = out_pos
        for o, ln in zip(self._off_list, self._len_list):
            o += base
            out[pos : pos + ln] = src[o : o + ln]
            pos += ln
        return pos - out_pos

    def scatter(self, dst: np.ndarray, base: int, src: np.ndarray,
                src_pos: int = 0) -> int:
        """Copy contiguous ``src`` bytes from ``src_pos`` into the
        program's blocks of ``dst`` (translated by ``base``)."""
        active_stats().translations += 1
        paths = active_kernel_paths()
        kind = self._kind
        if kind == _K_SINGLE:
            paths.single += 1
            if self.count == 0:
                return 0
            o = int(self.offsets[0]) + base
            ln = int(self.lengths[0])
            dst[o : o + ln] = src[src_pos : src_pos + ln]
            return ln
        if kind == _K_STRIDED:
            paths.strided_view += 1
            view = np.lib.stride_tricks.as_strided(
                dst[self._start + base :],
                shape=(self.count, self._first),
                strides=(self._step, 1),
            )
            view[...] = src[src_pos : src_pos + self.nbytes].reshape(
                self.count, self._first
            )
            return self.nbytes
        if kind == _K_INDEX:
            paths.fancy_index += 1
            idx = self._idx if base == 0 else self._idx + base
            dst[idx] = src[src_pos : src_pos + self.nbytes]
            return self.nbytes
        paths.small_loop += 1 if kind == _K_SMALL else 0
        paths.big_block += 1 if kind == _K_BIG else 0
        pos = src_pos
        for o, ln in zip(self._off_list, self._len_list):
            o += base
            dst[o : o + ln] = src[pos : pos + ln]
            pos += ln
        return pos - src_pos

    def __repr__(self) -> str:  # pragma: no cover
        kinds = {_K_SINGLE: "single", _K_SMALL: "small",
                 _K_STRIDED: "strided", _K_BIG: "big", _K_INDEX: "index"}
        return (
            f"BlockProgram(k={self.count}, nbytes={self.nbytes}, "
            f"kind={kinds[self._kind]})"
        )


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ProgramCache:
    """Store of compiled programs: loop → LRU of keyed programs.

    Entries are keyed ``(owner, residue, nbytes)`` — ``owner`` is the
    file identity (:attr:`repro.io.file_handle.SharedFileState.
    file_key`) the program was compiled for, or ``None`` for
    file-independent callers — so two open files can never alias each
    other's programs, and a fileview replacement on one file clears only
    that file's programs (:meth:`clear` with an owner).  The loop key is
    held weakly: dropping a datatype (and with it the cached dataloop)
    drops every program compiled from it.  Guarded by a lock because
    simulated ranks are threads sharing the cache.  One instance per
    session, plus the process-wide default.
    """

    def __init__(self) -> None:
        self._cache: "weakref.WeakKeyDictionary[Dataloop, OrderedDict]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()

    def clear(self, owner=None) -> None:
        """Drop compiled programs: all of them (``owner=None``), or only
        those compiled for one file identity."""
        with self._lock:
            if owner is None:
                self._cache.clear()
                return
            for progs in self._cache.values():
                for key in [k for k in progs if k[0] == owner]:
                    del progs[key]

    def lookup(self, loop: Dataloop, key: tuple):
        """The cached program for ``key``, LRU-promoted, or ``None``."""
        with self._lock:
            progs = self._cache.get(loop)
            if progs is None:
                return None
            prog = progs.get(key)
            if prog is not None:
                progs.move_to_end(key)
            return prog

    def store(self, loop: Dataloop, key: tuple, prog: "BlockProgram"):
        with self._lock:
            progs = self._cache.get(loop)
            if progs is None:
                progs = OrderedDict()
                self._cache[loop] = progs
            progs[key] = prog
            while len(progs) > _MAX_PROGRAMS_PER_LOOP:
                progs.popitem(last=False)


_DEFAULT_CACHE = ProgramCache()

#: Backward-compat view of the default cache's per-loop table (tests
#: poke it directly).  Safe to alias: ProgramCache mutates the mapping
#: in place and never rebinds it.
_cache = _DEFAULT_CACHE._cache


def active_cache() -> ProgramCache:
    """The program cache of the active session, or the process default."""
    s = SESSION.get(None)
    return _DEFAULT_CACHE if s is None else s.programs


def clear(owner=None) -> None:
    """Drop compiled programs from the active context's cache.

    Called on fileview replacement (the same epoch rule the plan LRU
    follows) with the replaced file's identity as ``owner``, so one
    file's ``set_view`` no longer evicts every other open file's
    programs; ``clear()`` with no owner drops everything.
    """
    active_cache().clear(owner)


def _periodicity(loop: Dataloop, s_lo: int, n: int) -> Tuple[int, int]:
    """Reduce a length-``n`` range at ``s_lo`` to its canonical position.

    Returns ``(rep, base)`` satisfying the relocation invariant::

        loop.blocks_range(s_lo, s_lo + n)
            == loop.blocks_range(rep, rep + n) + base

    A vector drops whole child periods (``child.size`` data bytes per
    ``stride`` extent bytes) and — when the remaining range fits inside
    one child instance — recurses into the child, so nested periodic
    structure (vectors of vectors, periodic struct fields) canonicalizes
    too.  A struct/indexed sequence recurses into the single child
    containing the range; ranges spanning children, and aperiodic
    leaves, key on the absolute position and translate by nothing.
    """
    if isinstance(loop, DLVector):
        csize = loop.child.size
        q, r = divmod(s_lo, csize)
        if r + n <= csize:
            rep, base = _periodicity(loop.child, r, n)
            return rep, q * loop.stride + base
        return r, q * loop.stride
    if isinstance(loop, DLSeq):
        cum = loop.cumsizes
        i = int(np.searchsorted(cum, s_lo, side="right")) - 1
        if 0 <= i < len(loop.children) and s_lo + n <= int(cum[i + 1]):
            rep, base = _periodicity(
                loop.children[i], s_lo - int(cum[i]), n
            )
            # rep + n never exceeds the child's size (rep <= the child-
            # relative position and the range fits the child), so the
            # re-keyed range resolves inside child i again and the
            # child's placement offset cancels out of the invariant.
            return int(cum[i]) + rep, base
        return s_lo, 0
    return s_lo, 0


def program_for(
    loop: Optional[Dataloop], s_lo: int, s_hi: int,
    use_programs: Optional[bool] = None,
    owner=None,
) -> Optional[Tuple[BlockProgram, int]]:
    """Compiled program and translation base for a range query.

    Returns ``(program, base)`` such that ``program.materialize(base)``
    equals ``loop.blocks_range(s_lo, s_hi)``, or ``None`` when the layer
    is disabled or the query is not worth compiling (empty range,
    contiguous loop — plain slice arithmetic beats any cache).
    ``owner`` is the file identity the program serves (part of the cache
    key; see :class:`ProgramCache`).
    """
    if use_programs is None:
        use_programs = _enabled
    stats = active_stats()
    if not use_programs or loop is None or s_hi <= s_lo:
        if use_programs:
            stats.bypasses += 1
        return None
    if isinstance(loop, DLContig) or (
        isinstance(loop, DLVector) and isinstance(loop.child, DLContig)
        and loop.stride == loop.child.size
    ):
        # Contiguous data: blocks_range is a two-array constant — the
        # cache could only add overhead.
        stats.bypasses += 1
        return None
    n = s_hi - s_lo
    residue, base = _periodicity(loop, s_lo, n)
    key = (owner, residue, n)
    cache = active_cache()
    prog = cache.lookup(loop, key)
    if prog is not None:
        stats.hits += 1
        return prog, base
    stats.misses += 1
    # Compile outside the lock: blocks_range is the expensive part and
    # touches only the immutable loop.
    from repro.obs import trace

    t0 = trace.now() if trace.TRACE_ON else 0.0
    offs, lens = loop.blocks_range(residue, residue + n)
    prog = BlockProgram(offs, lens)
    if trace.TRACE_ON:
        trace.TRACER.add("blockprog.compile", t0, blocks=int(offs.size))
    cache.store(loop, key, prog)
    return prog, base


def blocks_range_cached(
    loop: Dataloop, s_lo: int, s_hi: int,
    use_programs: Optional[bool] = None,
    owner=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop-in for ``loop.blocks_range`` that reuses compiled programs.

    The returned offsets are freshly translated (never aliased to the
    canonical arrays when a translation applies), so callers may mutate
    them — except for ``base == 0`` hits, which return the read-only
    canonical arrays themselves; callers that mutate must copy.
    """
    hit = program_for(loop, s_lo, s_hi, use_programs, owner=owner)
    if hit is None:
        return loop.blocks_range(s_lo, s_hi)
    prog, base = hit
    return prog.materialize(base)


def program_for_blocks(blocks) -> BlockProgram:
    """Compile (once) a program from a plan's materialized ``Blocks``.

    The program is cached on the ``Blocks`` object itself, so replays
    of a cached plan skip per-run ``tolist``/index-array derivation and
    window-relative offset arithmetic.
    """
    prog = blocks.prog
    if prog is None:
        prog = BlockProgram(blocks.offsets, blocks.lengths)
        object.__setattr__(blocks, "prog", prog)
    return prog

"""Dataloop compilation: from datatype trees to compact loop programs.

A *dataloop* is a small, immutable program describing one instance of a
datatype as nested loops over contiguous leaves — the representation
flattening-on-the-fly interprets.  Three node kinds suffice:

``DLContig(nbytes)``
    ``nbytes`` contiguous data bytes at relative offset 0.
``DLVector(count, stride, child)``
    ``count`` copies of ``child``, copy *i* at byte offset ``i * stride``.
``DLBlocks(offsets, lengths)``
    an irregular leaf: blocks at explicit offsets (descriptor-sized NumPy
    arrays — the description an ``indexed`` type inherently carries).
``DLSeq(offsets, children)``
    a sequence of placed children (struct fields), descriptor-sized.

Compilation (:func:`compile_dataloop`) runs in time proportional to the
constructor tree and applies the normalizations that make the interpreter
fast: contiguous collapse, unit-count elision and perfect-nesting fusion of
vectors.  Crucially — and in contrast to the explicit flattening of
:mod:`repro.flatten` — *no* representation of size O(Nblock) is ever
built or stored: a ``vector(10**7, 1, 2, DOUBLE)`` compiles to a two-node
program.

Every node supports vectorized enumeration of the contiguous blocks
holding an arbitrary data-byte range (:meth:`Dataloop.blocks_range`),
which is what :func:`repro.core.ff_pack.ff_pack` feeds to the
gather/scatter kernels, and O(depth·log k) size↔extent navigation used by
:mod:`repro.core.navigation`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.basic import BasicType, BoundsMarker
from repro.datatypes.constructors import (
    ContiguousType,
    HIndexedType,
    HVectorType,
    ResizedType,
    StructType,
)
from repro.errors import FFError

__all__ = [
    "Dataloop",
    "DLContig",
    "DLVector",
    "DLBlocks",
    "DLSeq",
    "compile_dataloop",
    "describe_dataloop",
]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class Dataloop:
    """Abstract dataloop node.

    ``size`` is the data bytes of one instance; ``data_start`` /
    ``data_end`` are the extent offsets of the first data byte and one
    past the last data byte; ``depth`` is the program nesting depth.
    """

    # __weakref__ lets repro.core.blockprog key its compiled-program
    # cache on loop identity without pinning loops in memory.
    __slots__ = ("size", "data_start", "data_end", "depth", "__weakref__")

    # ------------------------------------------------------------------
    def blocks_range(
        self, s_lo: int, s_hi: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(offsets, lengths)`` covering data bytes
        ``[s_lo, s_hi)`` of one instance, in type-map order.

        Offsets are relative to the instance origin.  The arrays are
        freshly computed per call (transient scratch, not a stored
        ol-list) with vectorized tiling; Python-level work is O(depth +
        number of irregular descriptor entries touched).
        """
        raise NotImplementedError

    def ext_of_size(self, s: int, end: bool) -> int:
        """Extent offset of data byte ``s`` (``end=False``) or one past
        data byte ``s - 1`` (``end=True``)."""
        raise NotImplementedError

    def size_of_ext(self, e: int) -> int:
        """Data bytes located strictly before extent offset ``e``.

        Requires a monotonic layout (guaranteed for fileview types, which
        are validated at ``set_view``).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Indented tree rendering of the loop program (one node per
        line, annotated with size/span/depth) — see
        :func:`describe_dataloop`."""
        return describe_dataloop(self)


class DLContig(Dataloop):
    """``nbytes`` contiguous data bytes at offset 0."""

    __slots__ = ()

    def __init__(self, nbytes: int):
        self.size = nbytes
        self.data_start = 0
        self.data_end = nbytes
        self.depth = 1

    def blocks_range(self, s_lo, s_hi):
        if s_hi <= s_lo:
            return _EMPTY_I64, _EMPTY_I64
        return (
            np.array([s_lo], dtype=np.int64),
            np.array([s_hi - s_lo], dtype=np.int64),
        )

    def ext_of_size(self, s, end):
        return s

    def size_of_ext(self, e):
        return min(max(e, 0), self.size)

    def __repr__(self):  # pragma: no cover
        return f"DLContig({self.size})"


class DLVector(Dataloop):
    """``count`` copies of ``child`` at stride ``stride`` bytes."""

    __slots__ = ("count", "stride", "child")

    def __init__(self, count: int, stride: int, child: Dataloop):
        if child.size <= 0:
            raise FFError("DLVector child must hold data")
        self.count = count
        self.stride = stride
        self.child = child
        self.size = count * child.size
        if count:
            last = (count - 1) * stride
            self.data_start = min(child.data_start, last + child.data_start)
            self.data_end = max(child.data_end, last + child.data_end)
        else:
            self.data_start = 0
            self.data_end = 0
        self.depth = child.depth + 1

    def blocks_range(self, s_lo, s_hi):
        if s_hi <= s_lo:
            return _EMPTY_I64, _EMPTY_I64
        csize = self.child.size
        q0, r0 = divmod(s_lo, csize)
        q1, r1 = divmod(s_hi, csize)
        child = self.child
        if isinstance(child, DLContig) and q1 - q0 <= 16:
            # Small-batch fast path: assemble the (at most 18) blocks in
            # plain Python; two array constructions instead of a dozen
            # NumPy kernel launches.
            offs: List[int] = []
            lens: List[int] = []
            if q0 == q1:
                offs.append(q0 * self.stride + r0)
                lens.append(r1 - r0)
            else:
                if r0:
                    offs.append(q0 * self.stride + r0)
                    lens.append(csize - r0)
                    q0 += 1
                for q in range(q0, q1):
                    offs.append(q * self.stride)
                    lens.append(csize)
                if r1:
                    offs.append(q1 * self.stride)
                    lens.append(r1)
            return (
                np.array(offs, dtype=np.int64),
                np.array(lens, dtype=np.int64),
            )
        parts_o: List[np.ndarray] = []
        parts_l: List[np.ndarray] = []
        if q0 == q1:
            o, l = self.child.blocks_range(r0, r1)
            return o + q0 * self.stride, l
        if r0:
            o, l = self.child.blocks_range(r0, csize)
            parts_o.append(o + q0 * self.stride)
            parts_l.append(l)
            q0 += 1
        if q1 > q0:
            o, l = self.child.blocks_range(0, csize)
            n = q1 - q0
            bases = (np.arange(q0, q1, dtype=np.int64) * self.stride)[:, None]
            parts_o.append((o[None, :] + bases).reshape(-1))
            parts_l.append(np.broadcast_to(l, (n, l.size)).reshape(-1))
        if r1:
            o, l = self.child.blocks_range(0, r1)
            parts_o.append(o + q1 * self.stride)
            parts_l.append(l)
        if len(parts_o) == 1:
            return parts_o[0], parts_l[0]
        return np.concatenate(parts_o), np.concatenate(parts_l)

    def ext_of_size(self, s, end):
        csize = self.child.size
        if end:
            if s <= 0:
                return 0
            q, r = divmod(s - 1, csize)
            return q * self.stride + self.child.ext_of_size(r + 1, True)
        q, r = divmod(s, csize)
        if q >= self.count:
            # s == size: end position.
            return (self.count - 1) * self.stride + self.child.ext_of_size(
                csize, True
            )
        return q * self.stride + self.child.ext_of_size(r, False)

    def size_of_ext(self, e):
        if e <= 0 or self.count == 0:
            return 0
        if self.count == 1:
            return self.child.size_of_ext(e)
        if self.stride <= 0:
            raise FFError("size_of_ext on non-monotonic vector")
        q = min(self.count - 1, e // self.stride)
        return q * self.child.size + self.child.size_of_ext(e - q * self.stride)

    def __repr__(self):  # pragma: no cover
        return f"DLVector({self.count}, {self.stride}, {self.child!r})"


class DLBlocks(Dataloop):
    """Irregular leaf: explicit blocks at ``offsets`` with ``lengths``.

    The arrays are the *descriptor* the indexed constructor was given —
    they exist in the datatype either way, so holding them here stores
    nothing a listless implementation wouldn't already have.
    """

    __slots__ = ("offsets", "lengths", "cum")

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray):
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        keep = lengths > 0
        if not keep.all():
            offsets = offsets[keep]
            lengths = lengths[keep]
        if offsets.size == 0:
            raise FFError("DLBlocks must hold data")
        self.offsets = offsets
        self.lengths = lengths
        self.cum = np.concatenate(([0], np.cumsum(lengths)))
        self.size = int(self.cum[-1])
        self.data_start = int(offsets.min())
        self.data_end = int((offsets + lengths).max())
        self.depth = 1

    def blocks_range(self, s_lo, s_hi):
        if s_hi <= s_lo:
            return _EMPTY_I64, _EMPTY_I64
        cum = self.cum
        i0 = int(np.searchsorted(cum, s_lo, side="right")) - 1
        i1 = int(np.searchsorted(cum, s_hi, side="left"))  # one past last
        offs = self.offsets[i0:i1].copy()
        lens = self.lengths[i0:i1].copy()
        head = s_lo - cum[i0]
        if head:
            offs[0] += head
            lens[0] -= head
        tail = cum[i1] - s_hi
        if tail:
            lens[-1] -= tail
        return offs, lens

    def ext_of_size(self, s, end):
        cum = self.cum
        if end:
            if s <= 0:
                return 0
            i = int(np.searchsorted(cum, s - 1, side="right")) - 1
            return int(self.offsets[i] + (s - 1 - cum[i]) + 1)
        if s >= self.size:
            return self.data_end
        i = int(np.searchsorted(cum, s, side="right")) - 1
        return int(self.offsets[i] + (s - cum[i]))

    def size_of_ext(self, e):
        if e <= 0:
            return 0
        i = int(np.searchsorted(self.offsets, e, side="right")) - 1
        if i < 0:
            return 0
        within = min(max(e - int(self.offsets[i]), 0), int(self.lengths[i]))
        return int(self.cum[i]) + within

    def __repr__(self):  # pragma: no cover
        return f"DLBlocks(k={self.offsets.size}, size={self.size})"


class DLSeq(Dataloop):
    """Sequence of placed children (struct fields), descriptor-sized."""

    __slots__ = ("offsets", "children", "cumsizes", "_data_starts")

    def __init__(self, offsets: Sequence[int], children: Sequence[Dataloop]):
        if not children:
            raise FFError("DLSeq must hold data")
        self.offsets = [int(o) for o in offsets]
        self.children = list(children)
        sizes = np.array([c.size for c in children], dtype=np.int64)
        self.cumsizes = np.concatenate(([0], np.cumsum(sizes)))
        self.size = int(self.cumsizes[-1])
        starts = [o + c.data_start for o, c in zip(self.offsets, children)]
        ends = [o + c.data_end for o, c in zip(self.offsets, children)]
        self.data_start = min(starts)
        self.data_end = max(ends)
        self.depth = 1 + max(c.depth for c in children)
        # Per-child first-data positions; sorted for monotonic types,
        # which are the only ones size_of_ext is defined on.
        self._data_starts = np.array(starts, dtype=np.int64)

    def blocks_range(self, s_lo, s_hi):
        if s_hi <= s_lo:
            return _EMPTY_I64, _EMPTY_I64
        cum = self.cumsizes
        i0 = int(np.searchsorted(cum, s_lo, side="right")) - 1
        i1 = int(np.searchsorted(cum, s_hi, side="left"))
        parts_o: List[np.ndarray] = []
        parts_l: List[np.ndarray] = []
        for i in range(i0, i1):
            lo = max(s_lo - int(cum[i]), 0)
            hi = min(s_hi - int(cum[i]), int(cum[i + 1] - cum[i]))
            o, l = self.children[i].blocks_range(lo, hi)
            parts_o.append(o + self.offsets[i])
            parts_l.append(l)
        if len(parts_o) == 1:
            return parts_o[0], parts_l[0]
        return np.concatenate(parts_o), np.concatenate(parts_l)

    def ext_of_size(self, s, end):
        cum = self.cumsizes
        if end:
            if s <= 0:
                return 0
            i = int(np.searchsorted(cum, s - 1, side="right")) - 1
            return self.offsets[i] + self.children[i].ext_of_size(
                s - int(cum[i]), True
            )
        if s >= self.size:
            return self.data_end
        i = int(np.searchsorted(cum, s, side="right")) - 1
        return self.offsets[i] + self.children[i].ext_of_size(
            s - int(cum[i]), False
        )

    def size_of_ext(self, e):
        if e <= 0:
            return 0
        # Children are data-disjoint and data-sorted for monotonic types:
        # every child whose data starts before e is either fully before e
        # or is the (single) child containing e.
        i = int(np.searchsorted(self._data_starts, e, side="right")) - 1
        if i < 0:
            return 0
        return int(self.cumsizes[i]) + self.children[i].size_of_ext(
            e - self.offsets[i]
        )

    def __repr__(self):  # pragma: no cover
        return f"DLSeq(k={len(self.children)}, size={self.size})"


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _place(loop: Dataloop, offset: int) -> Dataloop:
    """Place a loop at a byte offset (fused into DLBlocks/DLSeq)."""
    if offset == 0:
        return loop
    if isinstance(loop, DLBlocks):
        return DLBlocks(loop.offsets + offset, loop.lengths)
    if isinstance(loop, DLSeq):
        return DLSeq([o + offset for o in loop.offsets], loop.children)
    return DLSeq([offset], [loop])


def _vector(count: int, stride: int, child: Dataloop) -> Dataloop:
    """Build a vector node with the standard normalizations."""
    if count == 1:
        return child
    if isinstance(child, DLContig) and stride == child.size:
        return DLContig(count * child.size)
    if (
        isinstance(child, DLVector)
        and stride == child.count * child.stride
    ):
        # Perfect nesting: outer stride equals inner span → one flat vector.
        return _vector(count * child.count, child.stride, child.child)
    if isinstance(child, DLBlocks) and child.offsets.size * count <= 64:
        # Small irregular child: unroll into one descriptor-sized leaf.
        bases = np.arange(count, dtype=np.int64) * stride
        offs = (child.offsets[None, :] + bases[:, None]).reshape(-1)
        lens = np.broadcast_to(
            child.lengths, (count, child.lengths.size)
        ).reshape(-1)
        return DLBlocks(offs, lens)
    return DLVector(count, stride, child)


def _compile(dt: Datatype) -> Dataloop | None:
    """Compile one instance of ``dt``; None when the type holds no data."""
    if isinstance(dt, BoundsMarker):
        return None
    if isinstance(dt, BasicType):
        return DLContig(dt.nbytes)
    if dt.size == 0:
        return None
    if dt.is_contiguous:
        return _place(DLContig(dt.size), dt.lb)
    if isinstance(dt, ContiguousType):
        child = _compile(dt.base)
        assert child is not None
        return _vector(dt.count, dt.base.extent, child)
    if isinstance(dt, HVectorType):
        child = _compile(dt.base)
        assert child is not None
        inner = _vector(dt.blocklen, dt.base.extent, child)
        return _vector(dt.count, dt.stride, inner)
    if isinstance(dt, HIndexedType):
        base = dt.base
        child = _compile(base)
        assert child is not None
        if isinstance(child, DLContig) and base.extent == child.size:
            # Runs of a truly contiguous base: a pure blocks leaf.
            offs = []
            lens = []
            for b, d in zip(dt.blocklens, dt.displs):
                if b:
                    offs.append(d + base.lb)
                    lens.append(b * base.size)
            return DLBlocks(
                np.array(offs, dtype=np.int64), np.array(lens, dtype=np.int64)
            )
        offsets = []
        children = []
        for b, d in zip(dt.blocklens, dt.displs):
            if b:
                offsets.append(d)
                children.append(_vector(b, base.extent, child))
        if not offsets:
            return None
        if len(offsets) == 1:
            return _place(children[0], offsets[0])
        return DLSeq(offsets, children)
    if isinstance(dt, StructType):
        offsets = []
        children = []
        for b, d, t in zip(dt.blocklens, dt.displs, dt.types):
            if b == 0:
                continue
            sub = _compile(t)
            if sub is None:
                continue
            offsets.append(d)
            children.append(_vector(b, t.extent, sub))
        if not offsets:
            return None
        if len(offsets) == 1:
            return _place(children[0], offsets[0])
        return DLSeq(offsets, children)
    if isinstance(dt, ResizedType):
        return _compile(dt.base)
    raise FFError(f"cannot compile {type(dt).__name__} to a dataloop")


_UNSET = object()


def compile_dataloop(dt: Datatype) -> Dataloop | None:
    """Compile (and cache) the dataloop of one instance of ``dt``.

    Returns None for empty types.  Cost: O(constructor tree) on first
    call, O(1) after.  The cache lives on the (immutable) datatype object,
    and — unlike ROMIO's cached ol-list — is O(constructor tree), not
    O(Nblock).
    """
    loop = getattr(dt, "_dataloop_cache", _UNSET)
    if loop is _UNSET:
        loop = _compile(dt)
        dt._dataloop_cache = loop
    return loop  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Pretty-printing
# ----------------------------------------------------------------------
def _node_line(loop: Dataloop) -> str:
    span = f"span=[{loop.data_start},{loop.data_end})"
    if isinstance(loop, DLContig):
        return f"DLContig nbytes={loop.size}"
    if isinstance(loop, DLVector):
        return (
            f"DLVector count={loop.count} stride={loop.stride} "
            f"size={loop.size} {span}"
        )
    if isinstance(loop, DLBlocks):
        k = loop.offsets.size
        shown = ", ".join(
            f"({int(o)},{int(n)})"
            for o, n in zip(loop.offsets[:4], loop.lengths[:4])
        )
        if k > 4:
            shown += ", …"
        return f"DLBlocks k={k} size={loop.size} {span} blocks=[{shown}]"
    if isinstance(loop, DLSeq):
        return f"DLSeq k={len(loop.children)} size={loop.size} {span}"
    return repr(loop)


def describe_dataloop(loop: Dataloop | None) -> str:
    """Render a dataloop program as an indented tree, one node per line.

    The rendering is the compiled program itself — for a
    ``vector(10**7, 1, 2, DOUBLE)`` it is two lines, demonstrating the
    paper's point that the representation is O(tree), never O(Nblock).
    """
    if loop is None:
        return "(empty type: no dataloop)"
    lines: List[str] = []

    def walk(node: Dataloop, prefix: str, branch: str, cont: str,
             label: str = "") -> None:
        lines.append(prefix + branch + label + _node_line(node))
        if isinstance(node, DLVector):
            walk(node.child, prefix + cont, "└─ ", "   ")
        elif isinstance(node, DLSeq):
            last = len(node.children) - 1
            for i, (off, child) in enumerate(
                zip(node.offsets, node.children)
            ):
                b, c = ("└─ ", "   ") if i == last else ("├─ ", "│  ")
                walk(child, prefix + cont, b, c, label=f"@{off} ")

    walk(loop, "", "", "")
    return "\n".join(lines)

"""Vectorized gather/scatter kernels.

On the NEC SX, flattening-on-the-fly hands evenly spaced block copies to
the hardware gather/scatter units.  Here the analogous bulk primitives are
NumPy kernels, dispatched once per pack/unpack call:

* uniform blocks at a uniform stride → a strided-view copy (zero index
  arrays, pure memmove-style kernel);
* uniform blocks at irregular offsets → a broadcasted fancy-index
  gather/scatter;
* ragged blocks → the repeat-trick ragged gather/scatter.

The contrast with the list-based engine — which copies one ``(offset,
length)`` tuple at a time in an interpreted loop, reading the tuple before
each copy — is exactly the contrast the paper draws between gather/scatter
copies and per-block list traversal (§2.1, "Copy time").
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_blocks", "scatter_blocks", "block_index"]

#: Below this many blocks a plain loop of slice copies beats building
#: index arrays — the scalar-architecture adaptation of
#: flattening-on-the-fly (the paper's companion work [17] makes the same
#: observation for PC platforms: small batches copy best without the
#: vector machinery).
_SMALL_N = 16

#: Mean block size above which per-block memcpy beats index-array
#: gather: building the byte-index array costs 8 bytes of traffic per
#: payload byte, which only pays off when blocks are tiny.  (Analogous
#: to vector hardware: gather/scatter wins for fine-grained elements,
#: block copies win for long runs.)
_BIG_BLOCK = 256


def _uniform_stride(offsets: np.ndarray) -> int | None:
    """Return the common difference of ``offsets``, or None if irregular."""
    if offsets.size <= 1:
        return 0
    d = np.diff(offsets)
    step = int(d[0])
    if (d == step).all():
        return step
    return None


def block_index(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand ``(offsets, lengths)`` into a flat byte-index array.

    Used by the irregular paths of :func:`gather_blocks` /
    :func:`scatter_blocks`; exposed for tests.
    """
    if offsets.size == 0:
        return np.empty(0, dtype=np.int64)
    first = int(lengths[0]) if lengths.size else 0
    if (lengths == first).all():
        return (
            offsets[:, None] + np.arange(first, dtype=np.int64)[None, :]
        ).reshape(-1)
    total = int(lengths.sum())
    cum = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, lengths)
    return np.repeat(offsets, lengths) + within


def gather_blocks(
    src: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    out: np.ndarray,
    out_pos: int = 0,
) -> int:
    """Copy the described blocks of ``src`` (uint8) into ``out`` starting
    at ``out_pos``; returns the number of bytes copied."""
    n = offsets.size
    if n == 0:
        return 0
    if n == 1:
        o, ln = int(offsets[0]), int(lengths[0])
        out[out_pos : out_pos + ln] = src[o : o + ln]
        return ln
    if n <= _SMALL_N:
        pos = out_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            out[pos : pos + ln] = src[o : o + ln]
            pos += ln
        return pos - out_pos
    total = int(lengths.sum())
    first = int(lengths[0])
    uniform_len = bool((lengths == first).all())
    if uniform_len:
        step = _uniform_stride(offsets)
        if step is not None and step >= first:
            view = np.lib.stride_tricks.as_strided(
                src[int(offsets[0]) :],
                shape=(n, first),
                strides=(step, 1),
                writeable=False,
            )
            out[out_pos : out_pos + total] = view.reshape(-1)
            return total
    if total >= n * _BIG_BLOCK:
        # Long blocks: per-block memcpy beats building index arrays.
        pos = out_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            out[pos : pos + ln] = src[o : o + ln]
            pos += ln
        return pos - out_pos
    if uniform_len:
        idx = (
            offsets[:, None] + np.arange(first, dtype=np.int64)[None, :]
        ).reshape(-1)
        out[out_pos : out_pos + total] = src[idx]
        return total
    idx = block_index(offsets, lengths)
    out[out_pos : out_pos + total] = src[idx]
    return total


def scatter_blocks(
    dst: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    src: np.ndarray,
    src_pos: int = 0,
) -> int:
    """Copy contiguous bytes of ``src`` starting at ``src_pos`` into the
    described blocks of ``dst`` (uint8); returns bytes copied."""
    n = offsets.size
    if n == 0:
        return 0
    if n == 1:
        o, ln = int(offsets[0]), int(lengths[0])
        dst[o : o + ln] = src[src_pos : src_pos + ln]
        return ln
    if n <= _SMALL_N:
        pos = src_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            dst[o : o + ln] = src[pos : pos + ln]
            pos += ln
        return pos - src_pos
    total = int(lengths.sum())
    first = int(lengths[0])
    uniform_len = bool((lengths == first).all())
    if uniform_len:
        step = _uniform_stride(offsets)
        if step is not None and step >= first:
            view = np.lib.stride_tricks.as_strided(
                dst[int(offsets[0]) :],
                shape=(n, first),
                strides=(step, 1),
            )
            view[...] = src[src_pos : src_pos + total].reshape(n, first)
            return total
    if total >= n * _BIG_BLOCK:
        pos = src_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            dst[o : o + ln] = src[pos : pos + ln]
            pos += ln
        return pos - src_pos
    if uniform_len:
        idx = (
            offsets[:, None] + np.arange(first, dtype=np.int64)[None, :]
        ).reshape(-1)
        dst[idx] = src[src_pos : src_pos + total]
        return total
    idx = block_index(offsets, lengths)
    dst[idx] = src[src_pos : src_pos + total]
    return total

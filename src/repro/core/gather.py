"""Vectorized gather/scatter kernels.

On the NEC SX, flattening-on-the-fly hands evenly spaced block copies to
the hardware gather/scatter units.  Here the analogous bulk primitives are
NumPy kernels, dispatched once per pack/unpack call:

* uniform blocks at a uniform stride → a strided-view copy (zero index
  arrays, pure memmove-style kernel);
* uniform blocks at irregular offsets → a broadcasted fancy-index
  gather/scatter;
* ragged blocks → the repeat-trick ragged gather/scatter.

The contrast with the list-based engine — which copies one ``(offset,
length)`` tuple at a time in an interpreted loop, reading the tuple before
each copy — is exactly the contrast the paper draws between gather/scatter
copies and per-block list traversal (§2.1, "Copy time").
"""

from __future__ import annotations

import numpy as np

from repro._ctx import SESSION

__all__ = [
    "gather_blocks",
    "scatter_blocks",
    "block_index",
    "KERNEL_PATHS",
    "active_kernel_paths",
    "kernel_path_counts",
]

#: Below this many blocks a plain loop of slice copies beats building
#: index arrays — the scalar-architecture adaptation of
#: flattening-on-the-fly (the paper's companion work [17] makes the same
#: observation for PC platforms: small batches copy best without the
#: vector machinery).
_SMALL_N = 16

#: Mean block size above which per-block memcpy beats index-array
#: gather: building the byte-index array costs 8 bytes of traffic per
#: payload byte, which only pays off when blocks are tiny.  (Analogous
#: to vector hardware: gather/scatter wins for fine-grained elements,
#: block copies win for long runs.)
_BIG_BLOCK = 256


class _KernelPaths:
    """Process-wide counters: which gather/scatter kernel path fired.

    One counter per dispatch branch of :func:`gather_blocks` /
    :func:`scatter_blocks` (shared by the compiled block programs of
    :mod:`repro.core.blockprog`, which execute the same kernels from
    precompiled dispatch).  Shared by every simulated rank in the
    process; read through :func:`kernel_path_counts` and surfaced in
    engine stats and ``repro.cli plan-dump``.
    """

    __slots__ = ("single", "small_loop", "strided_view", "big_block",
                 "fancy_index", "ragged_index")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.single = 0
        self.small_loop = 0
        self.strided_view = 0
        self.big_block = 0
        self.fancy_index = 0
        self.ragged_index = 0

    def snapshot(self) -> dict:
        return {
            "kernel_path_single": self.single,
            "kernel_path_small_loop": self.small_loop,
            "kernel_path_strided_view": self.strided_view,
            "kernel_path_big_block": self.big_block,
            "kernel_path_fancy_index": self.fancy_index,
            "kernel_path_ragged_index": self.ragged_index,
        }


KERNEL_PATHS = _KernelPaths()


def active_kernel_paths() -> _KernelPaths:
    """The counters of the active :class:`~repro.session.IOSession`, or
    the process-wide defaults when no session is active.  Resolved once
    per kernel call (a single ContextVar read) so sessions cost the hot
    path essentially nothing."""
    s = SESSION.get(None)
    return KERNEL_PATHS if s is None else s.kernel_paths


def kernel_path_counts() -> dict:
    """Snapshot of the active context's kernel path counters."""
    return active_kernel_paths().snapshot()


def _uniform_stride(offsets: np.ndarray) -> int | None:
    """Return the common difference of ``offsets``, or None if irregular.

    The step may be negative (type-map order need not be file order);
    callers must check sign and magnitude before taking a strided view.
    """
    if offsets.size <= 1:
        return 0
    step = int(offsets[1]) - int(offsets[0])
    if offsets.size > 2 and int(offsets[2]) - int(offsets[1]) != step:
        # Early exit: the first two differences already disagree — skip
        # the O(n) diff of the whole array.
        return None
    d = np.diff(offsets)
    if (d == step).all():
        return step
    return None


def block_index(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand ``(offsets, lengths)`` into a flat byte-index array.

    Used by the irregular paths of :func:`gather_blocks` /
    :func:`scatter_blocks`; exposed for tests.
    """
    if offsets.size == 0:
        return np.empty(0, dtype=np.int64)
    first = int(lengths[0]) if lengths.size else 0
    if (lengths == first).all():
        return (
            offsets[:, None] + np.arange(first, dtype=np.int64)[None, :]
        ).reshape(-1)
    total = int(lengths.sum())
    cum = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, lengths)
    return np.repeat(offsets, lengths) + within


def gather_blocks(
    src: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    out: np.ndarray,
    out_pos: int = 0,
) -> int:
    """Copy the described blocks of ``src`` (uint8) into ``out`` starting
    at ``out_pos``; returns the number of bytes copied."""
    n = offsets.size
    if n == 0:
        return 0
    paths = active_kernel_paths()
    if n == 1:
        paths.single += 1
        o, ln = int(offsets[0]), int(lengths[0])
        out[out_pos : out_pos + ln] = src[o : o + ln]
        return ln
    if n <= _SMALL_N:
        paths.small_loop += 1
        pos = out_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            out[pos : pos + ln] = src[o : o + ln]
            pos += ln
        return pos - out_pos
    total = int(lengths.sum())
    first = int(lengths[0])
    uniform_len = bool((lengths == first).all())
    if uniform_len:
        step = _uniform_stride(offsets)
        # A strided view needs a positive, non-overlapping forward step;
        # negative steps (type-map order running backwards through the
        # buffer) and overlapping strides fall through to the index
        # paths, which handle arbitrary offsets.
        if step is not None and step >= first > 0:
            paths.strided_view += 1
            view = np.lib.stride_tricks.as_strided(
                src[int(offsets[0]) :],
                shape=(n, first),
                strides=(step, 1),
                writeable=False,
            )
            out[out_pos : out_pos + total] = view.reshape(-1)
            return total
    if total >= n * _BIG_BLOCK:
        # Long blocks: per-block memcpy beats building index arrays.
        paths.big_block += 1
        pos = out_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            out[pos : pos + ln] = src[o : o + ln]
            pos += ln
        return pos - out_pos
    if uniform_len:
        paths.fancy_index += 1
        idx = (
            offsets[:, None] + np.arange(first, dtype=np.int64)[None, :]
        ).reshape(-1)
        out[out_pos : out_pos + total] = src[idx]
        return total
    paths.ragged_index += 1
    idx = block_index(offsets, lengths)
    out[out_pos : out_pos + total] = src[idx]
    return total


def scatter_blocks(
    dst: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    src: np.ndarray,
    src_pos: int = 0,
) -> int:
    """Copy contiguous bytes of ``src`` starting at ``src_pos`` into the
    described blocks of ``dst`` (uint8); returns bytes copied."""
    n = offsets.size
    if n == 0:
        return 0
    paths = active_kernel_paths()
    if n == 1:
        paths.single += 1
        o, ln = int(offsets[0]), int(lengths[0])
        dst[o : o + ln] = src[src_pos : src_pos + ln]
        return ln
    if n <= _SMALL_N:
        paths.small_loop += 1
        pos = src_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            dst[o : o + ln] = src[pos : pos + ln]
            pos += ln
        return pos - src_pos
    total = int(lengths.sum())
    first = int(lengths[0])
    uniform_len = bool((lengths == first).all())
    if uniform_len:
        step = _uniform_stride(offsets)
        # As in gather_blocks: negative or overlapping steps fall through.
        # The index paths stay correct for overlapping scatters because
        # NumPy fancy assignment applies repeated indices in order (the
        # last block touching a byte wins, exactly like the per-block
        # loops, which write blocks in type-map order).
        if step is not None and step >= first > 0:
            paths.strided_view += 1
            view = np.lib.stride_tricks.as_strided(
                dst[int(offsets[0]) :],
                shape=(n, first),
                strides=(step, 1),
            )
            view[...] = src[src_pos : src_pos + total].reshape(n, first)
            return total
    if total >= n * _BIG_BLOCK:
        paths.big_block += 1
        pos = src_pos
        for o, ln in zip(offsets.tolist(), lengths.tolist()):
            dst[o : o + ln] = src[pos : pos + ln]
            pos += ln
        return pos - src_pos
    if uniform_len:
        paths.fancy_index += 1
        idx = (
            offsets[:, None] + np.arange(first, dtype=np.int64)[None, :]
        ).reshape(-1)
        dst[idx] = src[src_pos : src_pos + total]
        return total
    paths.ragged_index += 1
    idx = block_index(offsets, lengths)
    dst[idx] = src[src_pos : src_pos + total]
    return total

"""Fileview caching — exchange compact views once per ``set_view``.

In the conventional implementation, every collective access requires each
access process to build and send per-IOP ol-lists describing its fileview
over the access range (paper §2.3).  Listless I/O instead exchanges a
*compact representation* of each process' filetype and displacement
exactly once, when the fileview is established (§3.2.3: "fileview
caching"); afterwards each IOP navigates any other process' view locally.

The compact representation is the serialized constructor tree
(:func:`repro.datatypes.decode.to_tree`) — its wire size is proportional
to the constructor tree, independent of Nblock, which is what makes the
one-time exchange cheap (a vector filetype of a million blocks ships in a
few dozen bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from typing import Tuple

import numpy as np

from repro.core import blockprog
from repro.core.dataloop import Dataloop, _vector, compile_dataloop
from repro.datatypes import decode
from repro.datatypes.base import Datatype
from repro.errors import FFError

__all__ = ["CompactFileview", "FileviewCache"]

#: Effectively-unbounded repetition count for the tiled view dataloop.
#: (A fileview tiles the file indefinitely; Python ints make this exact.)
_UNBOUNDED = 1 << 62


@dataclass
class CompactFileview:
    """One process' fileview in compact (tree) form.

    Provides the navigation the IOP needs to serve the owning process:
    conversion between the process' data offsets (bytes through its view)
    and absolute file offsets, and coverage queries — all O(depth·log k)
    via the dataloop, without materializing any list.
    """

    disp: int
    etype_tree: Any
    filetype_tree: Any
    _etype: Optional[Datatype] = None
    _filetype: Optional[Datatype] = None
    _view_loop: Optional[Dataloop] = None
    # Hot-path scalars resolved once (navigation runs per window).
    _ft_size: int = 0
    _ft_extent: int = 0
    _ft_loop: Optional[Dataloop] = None
    #: File identity (``SharedFileState.file_key``) this view belongs
    #: to, set by the engine at ``setup_view``; keys compiled block
    #: programs so identical geometries on different files never alias.
    #: Travels with the view when it is pickled to shard servers.
    owner: Any = None

    def _resolve(self) -> None:
        ft = self.filetype
        self._ft_size = ft.size
        self._ft_extent = ft.extent
        self._ft_loop = compile_dataloop(ft)

    @classmethod
    def from_view(
        cls, disp: int, etype: Datatype, filetype: Datatype
    ) -> "CompactFileview":
        cv = cls(
            disp=disp,
            etype_tree=decode.to_tree(etype),
            filetype_tree=decode.to_tree(filetype),
        )
        # The originating process can keep the live objects (and their
        # cached dataloops); receivers rebuild lazily.
        cv._etype = etype
        cv._filetype = filetype
        return cv

    @property
    def etype(self) -> Datatype:
        if self._etype is None:
            self._etype = decode.from_tree(self.etype_tree)
        return self._etype

    @property
    def filetype(self) -> Datatype:
        if self._filetype is None:
            self._filetype = decode.from_tree(self.filetype_tree)
        return self._filetype

    @property
    def wire_bytes(self) -> int:
        """Size of the representation on the wire (one-time cost)."""
        return decode.tree_nbytes(self.filetype_tree) + decode.tree_nbytes(
            self.etype_tree
        ) + 8

    @property
    def view_loop(self) -> Dataloop:
        """Dataloop of the *tiled* view (unbounded repetition).

        Data-byte offsets through the view map to extent offsets relative
        to ``disp``; used for vectorized block enumeration over any file
        range.
        """
        if self._view_loop is None:
            ft = self.filetype
            inst = compile_dataloop(ft)
            assert inst is not None
            # _vector collapses a contiguous filetype into one unbounded
            # contiguous leaf (plain offset arithmetic, no index arrays).
            self._view_loop = _vector(_UNBOUNDED, ft.extent, inst)
        return self._view_loop

    def blocks_for_data(
        self, d_lo: int, d_hi: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absolute-file-offset blocks holding view data bytes
        ``[d_lo, d_hi)`` — one vectorized enumeration, no stored list.

        Routed through the compiled block-program cache: the tiled view
        loop is periodic in the filetype, so a window shape that recurs
        at a different period (a sieving or two-phase loop) reuses its
        canonical descriptor, translated by a scalar base.
        """
        offs, lens = blockprog.blocks_range_cached(
            self.view_loop, d_lo, d_hi, owner=self.owner
        )
        return offs + self.disp, lens

    # ------------------------------------------------------------------
    # Navigation through the tiled view
    # ------------------------------------------------------------------
    def abs_of_data(self, data_off: int, end: bool = False) -> int:
        """Absolute file offset of the ``data_off``-th byte seen through
        the view (``end=True``: position after byte ``data_off - 1``)."""
        if self._ft_loop is None:
            self._resolve()
        if end and data_off == 0:
            return self.disp
        q, r = divmod(data_off - (1 if end else 0), self._ft_size)
        if end:
            r += 1
        return self.disp + q * self._ft_extent + self._ft_loop.ext_of_size(
            r, end
        )

    def data_of_abs(self, abs_off: int) -> int:
        """Data bytes visible through the view strictly before absolute
        file offset ``abs_off``."""
        if self._ft_loop is None:
            self._resolve()
        rel = abs_off - self.disp
        if rel <= 0:
            return 0
        q, r = divmod(rel, self._ft_extent)
        return q * self._ft_size + self._ft_loop.size_of_ext(r)

    def data_in_range(self, lo: int, hi: int) -> int:
        """Data bytes visible through the view within ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.data_of_abs(hi) - self.data_of_abs(lo)


class FileviewCache:
    """Per-file store of every process' compact fileview.

    Filled once by the collective ``set_view`` (each process contributes
    its own view via an allgather of compact representations); read by
    IOPs on every collective access.  Also records the one-time exchange
    volume so benchmarks can compare it against per-access ol-list
    exchange volume.
    """

    def __init__(self) -> None:
        self._views: Dict[int, CompactFileview] = {}
        self.exchange_bytes = 0
        #: bumped on every install; plan caches key on it so plans built
        #: against a replaced view can never be replayed.
        self.epoch = 0

    def install(self, views: Dict[int, CompactFileview]) -> None:
        """Install the allgathered views (replacing any previous epoch)."""
        self._views = dict(views)
        self.exchange_bytes = sum(v.wire_bytes for v in views.values())
        self.epoch += 1

    def view_of(self, rank: int) -> CompactFileview:
        try:
            return self._views[rank]
        except KeyError:
            raise FFError(f"no cached fileview for rank {rank}") from None

    def __len__(self) -> int:
        return len(self._views)

    def ranks(self):
        return self._views.keys()

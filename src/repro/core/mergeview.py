"""The mergeview: collective-write contiguity in O(P · depth) (paper §3.2.3).

ROMIO decides whether a collective write covers a file range contiguously
— allowing it to skip the read-modify-write of data sieving — by merging
the ol-lists of *all* processes, an O(Σ_p Nblock(p)) operation per access.

Listless I/O builds a *mergeview* once, when the fileview is established:
conceptually a struct datatype overlaying every process' filetype at the
common displacement with suitable repetition counts.  A collective access
over a given range is contiguous iff the merged view contains as many data
bytes in the range as the range is long, which a single ``ff_size``-style
evaluation answers.

As in the paper, the construction requires all processes to use an
identical displacement (the normal case — the displacement skips a common
file header); otherwise the mergeview is unavailable and the engine falls
back to read-modify-write.  Also as in the paper, correctness of the
"covered ⇒ contiguous" conclusion relies on the MPI-IO filetype
restrictions: within one view no byte appears twice, and the partitioned
fileviews of a collective write are non-overlapping across processes.
"""

from __future__ import annotations

from math import gcd
from typing import Optional, Sequence

from repro.core.fileview_cache import CompactFileview

__all__ = ["Mergeview", "build_mergeview"]


class Mergeview:
    """Merged coverage view of all processes' filetypes."""

    def __init__(self, views: Sequence[CompactFileview], disp: int,
                 period: int, bytes_per_period: int) -> None:
        self._views = list(views)
        self.disp = disp
        #: least common multiple of the filetype extents — the tile after
        #: which the merged pattern repeats.
        self.period = period
        #: merged data bytes per period (Σ filetype sizes × repetitions).
        self.bytes_per_period = bytes_per_period

    @property
    def is_fully_dense(self) -> bool:
        """True if one period of the merged view covers every byte."""
        return self.bytes_per_period == self.period

    def data_in_range(self, lo: int, hi: int) -> int:
        """Merged data bytes within absolute file range ``[lo, hi)``.

        O(P · depth · log k): one navigation per process view — never a
        list merge.
        """
        if hi <= lo:
            return 0
        return sum(v.data_in_range(lo, hi) for v in self._views)

    def covers(self, lo: int, hi: int) -> bool:
        """True iff every byte of ``[lo, hi)`` is written by the
        collective access — the single-call contiguity check that replaces
        ROMIO's ol-list merge."""
        if hi <= lo:
            return True
        if self.is_fully_dense and lo >= self.disp:
            return True
        return self.data_in_range(lo, hi) >= hi - lo


def build_mergeview(
    views: Sequence[CompactFileview],
) -> Optional[Mergeview]:
    """Build the mergeview, or return None when displacements differ.

    Cost: O(P) constructions of already-compiled dataloops; nothing is
    flattened.
    """
    if not views:
        return None
    disp = views[0].disp
    if any(v.disp != disp for v in views[1:]):
        return None
    period = 1
    for v in views:
        ext = v.filetype.extent
        period = period * ext // gcd(period, ext)
    bytes_per_period = sum(
        (period // v.filetype.extent) * v.filetype.size for v in views
    )
    return Mergeview(views, disp, period, bytes_per_period)

"""repro — reproduction of "Fast Parallel Non-Contiguous File Access" (SC'03).

This package implements, from scratch and in pure Python/NumPy:

* an MPI derived-datatype engine (:mod:`repro.datatypes`),
* ROMIO-style explicit flattening into ol-lists (:mod:`repro.flatten`),
* the paper's *listless I/O* core — flattening-on-the-fly pack/unpack and
  datatype navigation (:mod:`repro.core`),
* a simulated POSIX-like parallel file system (:mod:`repro.fs`),
* an in-process SPMD MPI runtime (:mod:`repro.mpi`),
* an MPI-IO layer with interchangeable list-based and listless engines
  (:mod:`repro.io`),
* the paper's evaluation workloads — the ``noncontig`` synthetic benchmark
  and the NAS BTIO application kernel (:mod:`repro.bench`).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    DatatypeError,
    FileSystemError,
    IOEngineError,
    MPIRuntimeError,
)

__all__ = [
    "__version__",
    "ReproError",
    "DatatypeError",
    "FileSystemError",
    "IOEngineError",
    "MPIRuntimeError",
]

"""The ambient-session context variable.

Kept in a leaf module with no imports so every layer — the copy kernels
in :mod:`repro.core`, the metrics registry in :mod:`repro.obs`, the
runtimes in :mod:`repro.mpi` — can resolve the active
:class:`~repro.session.IOSession` without import cycles.

``SESSION.get(None)`` is the one-read hot-path probe: ``None`` means no
session is active and callers fall back to the historical process-wide
singletons (so code that never touches sessions behaves exactly as
before).  New threads start with an empty context, so a session must be
activated explicitly inside each rank thread / server worker that
should land in it (:meth:`repro.session.IOSession.activate`,
``run_spmd(..., session=)``).
"""

from __future__ import annotations

from contextvars import ContextVar

__all__ = ["SESSION"]

#: The active IOSession of the calling context, if any.
SESSION: ContextVar = ContextVar("repro_session")

"""A library of realistic non-contiguous access patterns.

The paper closes by noting that "especially the behavior in complex
applications is of interest".  This module collects the fileview/memtype
families that parallel applications actually use, each as a parameterized
generator returning a :class:`Workload` (per-rank filetype, memtype and
buffer geometry).  The workload bench (``benchmarks/bench_ext_workloads``)
runs every family through both engines; examples and tests reuse them.

Families
--------

``tiled_matrix``
    2-D block decomposition of an N×N matrix over a q×q grid — the
    checkpoint pattern of dense solvers (moderate, row-sized runs).
``row_cyclic``
    cyclic row distribution — the ScaLAPACK-style layout (row-sized runs
    with large strides).
``column_blocks``
    column-block decomposition of a row-major matrix — the pathological
    fine-grained case (one element per run).
``scatter_records``
    irregular fixed-size records at per-rank index sets — particle /
    unstructured-mesh I/O.
``ghost_grid3d``
    the BTIO-style 3-D cell interior write (subarray memtype with halo,
    subarray filetype).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro import datatypes as dt
from repro.datatypes.base import Datatype

__all__ = ["Workload", "WORKLOADS", "make_workload"]


@dataclass(frozen=True)
class Workload:
    """One rank's view of a family instance."""

    name: str
    filetype: Datatype
    memtype: Datatype
    count: int
    #: bytes the rank's user buffer must hold
    buffer_bytes: int
    #: total data bytes this rank moves per access
    data_bytes: int
    #: bytes of the whole shared file region (all ranks, one instance)
    file_bytes: int


def tiled_matrix(rank: int, nprocs: int, n: int = 256) -> Workload:
    """Block-distributed N×N double matrix over a q×q grid."""
    q = int(round(nprocs ** 0.5))
    if q * q != nprocs:
        raise ValueError(f"tiled_matrix needs square nprocs, got {nprocs}")
    ftype = dt.darray(
        nprocs, rank, [n, n], [dt.DISTRIBUTE_BLOCK] * 2,
        [dt.DISTRIBUTE_DFLT_DARG] * 2, [q, q], dt.DOUBLE,
    )
    size = ftype.size
    return Workload(
        name="tiled_matrix",
        filetype=ftype,
        memtype=dt.contiguous(size // 8, dt.DOUBLE),
        count=1,
        buffer_bytes=size,
        data_bytes=size,
        file_bytes=n * n * 8,
    )


def row_cyclic(rank: int, nprocs: int, n: int = 256) -> Workload:
    """Cyclic row distribution of an N×N double matrix."""
    ftype = dt.darray(
        nprocs, rank, [n, n],
        [dt.DISTRIBUTE_CYCLIC, dt.DISTRIBUTE_NONE],
        [1, dt.DISTRIBUTE_DFLT_DARG], [nprocs, 1], dt.DOUBLE,
    )
    size = ftype.size
    return Workload(
        name="row_cyclic",
        filetype=ftype,
        memtype=dt.contiguous(size // 8, dt.DOUBLE),
        count=1,
        buffer_bytes=size,
        data_bytes=size,
        file_bytes=n * n * 8,
    )


def column_blocks(rank: int, nprocs: int, n: int = 256) -> Workload:
    """Column-block decomposition of a row-major matrix: each rank owns
    n/nprocs *columns*, i.e. n runs of (n/nprocs) doubles — and for a
    single column per rank, n runs of ONE double."""
    cols = max(n // nprocs, 1)
    ftype = dt.subarray(
        [n, n], [n, cols], [0, rank * cols], dt.DOUBLE
    )
    size = ftype.size
    return Workload(
        name="column_blocks",
        filetype=ftype,
        memtype=dt.contiguous(size // 8, dt.DOUBLE),
        count=1,
        buffer_bytes=size,
        data_bytes=size,
        file_bytes=n * n * 8,
    )


def scatter_records(rank: int, nprocs: int, n: int = 4096,
                    record_bytes: int = 32) -> Workload:
    """Irregular record ownership: round-robin with a deterministic
    shuffle of block boundaries (unstructured-mesh style)."""
    rng = np.random.default_rng(7)
    perm = rng.permutation(n)
    mine = np.sort(perm[rank::nprocs])
    rec = dt.contiguous(record_bytes, dt.BYTE)
    ftype = dt.indexed_block(1, mine.tolist(), rec)
    size = ftype.size
    return Workload(
        name="scatter_records",
        filetype=ftype,
        memtype=dt.contiguous(size, dt.BYTE),
        count=1,
        buffer_bytes=size,
        data_bytes=size,
        file_bytes=n * record_bytes,
    )


def ghost_grid3d(rank: int, nprocs: int, n: int = 32,
                 ghost: int = 2) -> Workload:
    """BTIO-style: a 3-D grid split into slabs along k; in memory each
    slab is ghost-padded, the interior subarray is written."""
    slab = n // nprocs
    if slab * nprocs != n:
        raise ValueError(f"{n} not divisible by {nprocs}")
    point = dt.contiguous(5, dt.DOUBLE)
    ftype = dt.subarray(
        [n, n, n], [slab, n, n], [rank * slab, 0, 0], point
    )
    m = slab + 2 * ghost
    mg = n + 2 * ghost
    mtype = dt.subarray(
        [m, mg, mg], [slab, n, n], [ghost, ghost, ghost], point
    )
    return Workload(
        name="ghost_grid3d",
        filetype=ftype,
        memtype=mtype,
        count=1,
        buffer_bytes=m * mg * mg * 40,
        data_bytes=ftype.size,
        file_bytes=n ** 3 * 40,
    )


#: name → generator(rank, nprocs) with library defaults.
WORKLOADS: Dict[str, Callable[[int, int], Workload]] = {
    "tiled_matrix": tiled_matrix,
    "row_cyclic": row_cyclic,
    "column_blocks": column_blocks,
    "scatter_records": scatter_records,
    "ghost_grid3d": ghost_grid3d,
}


def make_workload(name: str, rank: int, nprocs: int,
                  **kwargs) -> Workload:
    """Instantiate workload ``name`` for one rank."""
    try:
        gen = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return gen(rank, nprocs, **kwargs)

"""Phase timing: measured CPU time + simulated device/wire time.

The substitution rule of this reproduction (DESIGN.md §2) replaces the SX
file system and interconnect with in-memory stores plus cost models, so a
phase's *effective* time is::

    elapsed = wall (max over ranks, barrier-bracketed)
            + simulated device seconds accumulated by the file system
            + simulated wire seconds of the busiest rank

:class:`PhaseClock` snapshots the simulated components around a phase and
combines them with the measured wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.fs.filesystem import SimFileSystem
from repro.mpi.runtime import World

__all__ = ["PhaseClock", "PhaseTime"]


@dataclass(frozen=True)
class PhaseTime:
    """Elapsed components of one measured phase (seconds)."""

    wall: float
    fs_sim: float
    net_sim: float

    @property
    def total(self) -> float:
        return self.wall + self.fs_sim + self.net_sim

    def bandwidth(self, nbytes: int) -> float:
        """Bytes/second over the combined elapsed time."""
        return nbytes / self.total if self.total > 0 else float("inf")


class PhaseClock:
    """Start/stop clock over a file system and a world."""

    def __init__(self, fs: SimFileSystem, world: World) -> None:
        self._fs = fs
        self._world = world
        self._t0 = 0.0
        self._fs0 = 0.0
        self._net0 = 0.0

    def start(self) -> None:
        self._fs0 = self._fs.total_sim_time()
        self._net0 = self._world.max_net_time()
        self._t0 = time.perf_counter()

    def stop(self) -> PhaseTime:
        wall = time.perf_counter() - self._t0
        return PhaseTime(
            wall=wall,
            fs_sim=self._fs.total_sim_time() - self._fs0,
            net_sim=self._world.max_net_time() - self._net0,
        )

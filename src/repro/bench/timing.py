"""Phase timing: measured CPU time + simulated device/wire time.

The substitution rule of this reproduction (DESIGN.md §2) replaces the SX
file system and interconnect with in-memory stores plus cost models, so a
phase's *effective* time is::

    elapsed = wall (max over ranks, barrier-bracketed)
            + simulated device seconds accumulated by the file system
            + simulated wire seconds of the busiest rank

:class:`PhaseClock` snapshots the simulated components around a phase and
combines them with the measured wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.fs.filesystem import SimFileSystem
from repro.mpi.runtime import World

__all__ = ["PhaseClock", "PhaseTime"]


@dataclass(frozen=True)
class PhaseTime:
    """Elapsed components of one measured phase (seconds)."""

    wall: float
    fs_sim: float
    net_sim: float

    @property
    def total(self) -> float:
        return self.wall + self.fs_sim + self.net_sim

    def bandwidth(self, nbytes: int) -> float:
        """Bytes/second over the combined elapsed time."""
        return nbytes / self.total if self.total > 0 else float("inf")


class PhaseClock:
    """Start/stop clock over a file system and a world.

    Either component may be ``None`` — its simulated contribution is
    then zero.  The proc runtime runs this way: the real device and
    wire are inside the measured wall time, and the parent-side world
    report does not exist while a rank is still running.
    """

    def __init__(self, fs: Optional[SimFileSystem] = None,
                 world: Optional[World] = None) -> None:
        self._fs = fs
        self._world = world
        self._t0 = 0.0
        self._fs0 = 0.0
        self._net0 = 0.0

    def start(self) -> None:
        self._fs0 = self._fs.total_sim_time() if self._fs else 0.0
        self._net0 = self._world.max_net_time() if self._world else 0.0
        self._t0 = time.perf_counter()

    def stop(self) -> PhaseTime:
        wall = time.perf_counter() - self._t0
        fs1 = self._fs.total_sim_time() if self._fs else 0.0
        net1 = self._world.max_net_time() if self._world else 0.0
        return PhaseTime(
            wall=wall,
            fs_sim=fs1 - self._fs0,
            net_sim=net1 - self._net0,
        )

"""The ``noncontig`` synthetic benchmark (paper §4.1, Figs. 5–8).

The fileview of process *p* out of *P* is the Fig. 4 datatype::

    MPI_Struct { MPI_LB @ 0,
                 MPI_Vector(blockcount, blocklen, stride = P·blocklen),
                 MPI_UB @ extent }          with disp = p · blocklen

so the P views interleave to tile the file completely without overlap —
"the file accesses of all processes are not overlapping".  The benchmark
writes and subsequently reads back the data through one of the Fig. 1
layout combinations:

``c-nc``
    contiguous user buffer, non-contiguous fileview;
``nc-c``
    non-contiguous user buffer (the same vector geometry), each process
    writing a contiguous region of the file;
``nc-nc``
    non-contiguous on both sides.

Bandwidth per process is reported over the combined measured + simulated
elapsed time (see :mod:`repro.bench.timing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import datatypes as dt
from repro.bench.timing import PhaseClock, PhaseTime
from repro.datatypes.base import Datatype
from repro.fs.filesystem import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi.runtime import run_spmd

__all__ = [
    "NoncontigConfig",
    "NoncontigResult",
    "build_noncontig_filetype",
    "build_noncontig_memtype",
    "run_noncontig",
]

PATTERNS = ("c-nc", "nc-c", "nc-nc")


def build_noncontig_filetype(
    nprocs: int, rank: int, blocklen: int, blockcount: int
) -> Datatype:
    """The Fig. 4 filetype of process ``rank``: ``blockcount`` blocks of
    ``blocklen`` bytes, stride ``nprocs * blocklen``, displaced by
    ``rank * blocklen`` inside an extent that tiles the whole pattern."""
    vec = dt.vector(blockcount, blocklen, nprocs * blocklen, dt.BYTE)
    extent = blockcount * nprocs * blocklen
    return dt.struct(
        [1, 1, 1],
        [0, rank * blocklen, extent],
        [dt.LB, vec, dt.UB],
    )


def build_noncontig_memtype(blocklen: int, blockcount: int) -> Datatype:
    """Non-contiguous memtype with the same granularity: ``blockcount``
    blocks of ``blocklen`` bytes separated by equal-size gaps."""
    return dt.vector(blockcount, blocklen, 2 * blocklen, dt.BYTE)


@dataclass(frozen=True)
class NoncontigConfig:
    """One benchmark configuration (one point of a paper figure)."""

    nprocs: int
    blocklen: int  # Sblock in bytes
    blockcount: int  # Nblock
    pattern: str = "c-nc"
    collective: bool = False
    nreps: int = 4  # accesses per phase (file grows accordingly)
    hints: Optional[Hints] = None
    verify: bool = False  # re-check the read data against the written data

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )

    @property
    def bytes_per_access(self) -> int:
        """Data bytes per process per access."""
        return self.blocklen * self.blockcount

    @property
    def bytes_per_proc(self) -> int:
        """Data bytes per process per phase."""
        return self.bytes_per_access * self.nreps

    @property
    def file_bytes(self) -> int:
        """Total file size after the write phase."""
        return self.bytes_per_proc * self.nprocs


@dataclass
class NoncontigResult:
    """Timings and bandwidths of one run."""

    config: NoncontigConfig
    engine: str
    write_time: PhaseTime = None  # type: ignore[assignment]
    read_time: PhaseTime = None  # type: ignore[assignment]
    comm_bytes: int = 0
    fs_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def write_bpp(self) -> float:
        """Write bandwidth per process (bytes/s)."""
        return self.write_time.bandwidth(self.config.bytes_per_proc)

    @property
    def read_bpp(self) -> float:
        """Read bandwidth per process (bytes/s)."""
        return self.read_time.bandwidth(self.config.bytes_per_proc)


def run_noncontig(
    engine: str,
    config: NoncontigConfig,
    fs: Optional[SimFileSystem] = None,
) -> NoncontigResult:
    """Run the benchmark with the given engine; returns timings.

    Write phase then read phase, each barrier-bracketed; file view and
    handles are established outside the timed regions (as the benchmark
    intends — ``set_view`` cost is a separate, one-time quantity the
    ablation bench measures).
    """
    fs = fs or SimFileSystem()
    cfg = config
    P = cfg.nprocs
    worlds: list = []
    clock_box: dict = {}
    result = NoncontigResult(config=cfg, engine=engine)

    noncontig_file = cfg.pattern in ("c-nc", "nc-nc")
    noncontig_mem = cfg.pattern in ("nc-c", "nc-nc")
    A = cfg.bytes_per_access

    def worker(comm) -> None:
        rank = comm.rank
        fh = File.open(
            comm, fs, "/noncontig", MODE_CREATE | MODE_RDWR,
            engine=engine, hints=cfg.hints,
        )
        if noncontig_file:
            ft = build_noncontig_filetype(P, rank, cfg.blocklen,
                                          cfg.blockcount)
            fh.set_view(0, dt.BYTE, ft)
        else:
            # nc-c / c-c: each process owns a contiguous file region.
            fh.set_view(rank * cfg.bytes_per_proc, dt.BYTE, dt.BYTE)

        rng = np.random.default_rng(7 + rank)
        if noncontig_mem:
            mt = build_noncontig_memtype(cfg.blocklen, cfg.blockcount)
            wbuf = rng.integers(0, 256, size=2 * A, dtype=np.uint8)
            rbuf = np.zeros(2 * A, dtype=np.uint8)
            count, memtype = 1, mt
        else:
            wbuf = rng.integers(0, 256, size=A, dtype=np.uint8)
            rbuf = np.zeros(A, dtype=np.uint8)
            count, memtype = A, dt.BYTE

        write = fh.write_at_all if cfg.collective else fh.write_at
        read = fh.read_at_all if cfg.collective else fh.read_at

        # ---------------- write phase ----------------
        comm.barrier()
        if rank == 0:
            clk = PhaseClock(fs, worlds[0])
            clock_box["clk"] = clk
            clk.start()
        comm.barrier()
        for rep in range(cfg.nreps):
            write(rep * A, wbuf, count, memtype)
        comm.barrier()
        if rank == 0:
            result.write_time = clock_box["clk"].stop()
            clock_box["clk"].start()
        comm.barrier()
        # ---------------- read phase ----------------
        for rep in range(cfg.nreps):
            read(rep * A, rbuf, count, memtype)
        comm.barrier()
        if rank == 0:
            result.read_time = clock_box["clk"].stop()
        if cfg.verify:
            if noncontig_mem:
                mask = np.zeros(2 * A, dtype=bool)
                for b in range(cfg.blockcount):
                    mask[2 * b * cfg.blocklen :
                         2 * b * cfg.blocklen + cfg.blocklen] = True
                assert (rbuf[mask] == wbuf[mask]).all()
            else:
                assert (rbuf == wbuf).all()
        fh.close()

    run_spmd(P, worker, world_out=worlds)
    result.comm_bytes = worlds[0].total_bytes_sent()
    result.fs_stats = fs.lookup("/noncontig").stats.snapshot()
    return result

"""Paper-style table and series formatting for the benchmark harness.

The benchmark scripts print the same rows/series the paper reports; these
helpers keep the formatting consistent: fixed-width aligned columns,
bandwidths in MB/s, ratios to two decimals.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["mb_per_s", "format_table", "format_series", "fmt_bytes"]


def mb_per_s(bytes_per_second: float) -> float:
    """Convert bytes/s to MB/s (decimal, as the paper reports)."""
    return bytes_per_second / 1e6


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (kB/MB/GB, decimal)."""
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if n >= div:
            return f"{n / div:.3g} {unit}"
    return f"{int(n)} B"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table."""
    srows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        srows.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in srows) for i in range(len(headers))]
    lines = []
    for i, r in enumerate(srows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    x_name: str,
    xs: Sequence[object],
    series: Sequence[tuple],
) -> str:
    """Render figure data: one row per x value, one column per curve.

    ``series`` is a sequence of ``(curve_name, values)`` pairs, matching
    the paper figures' legend entries (e.g. ``"listless: nc-nc"``).
    """
    headers = [x_name] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [vals[i] for _, vals in series])
    return format_table(headers, rows)

"""Evaluation workloads of the paper.

* :mod:`repro.bench.noncontig` — the highly configurable synthetic
  benchmark of §4.1: a vector-based non-contiguous fileview (paper Fig. 4)
  partitioning a file among P processes, written and read back with
  independent or collective accesses in the c-nc / nc-c / nc-nc memory/file
  layout combinations of Fig. 1.
* :mod:`repro.bench.btio` — the NAS BTIO application kernel of §4.2:
  diagonal multi-partitioning of a cubic grid, subarray-built memtypes and
  filetypes, one collective ``write_at_all`` per time step.
* :mod:`repro.bench.timing` — barrier-bracketed phase timing combining
  measured CPU time with simulated device and wire time.
* :mod:`repro.bench.reporting` — paper-style table/series formatting.
"""

from repro.bench.noncontig import (
    NoncontigConfig,
    NoncontigResult,
    build_noncontig_filetype,
    build_noncontig_memtype,
    run_noncontig,
)
from repro.bench.btio import (
    BTIOConfig,
    BTIOResult,
    BTIO_CLASSES,
    btio_characterize,
    run_btio,
)
from repro.bench.timing import PhaseClock
from repro.bench.reporting import format_table, format_series, mb_per_s
from repro.bench.workloads import Workload, WORKLOADS, make_workload

__all__ = [
    "NoncontigConfig",
    "NoncontigResult",
    "build_noncontig_filetype",
    "build_noncontig_memtype",
    "run_noncontig",
    "BTIOConfig",
    "BTIOResult",
    "BTIO_CLASSES",
    "btio_characterize",
    "run_btio",
    "PhaseClock",
    "format_table",
    "format_series",
    "mb_per_s",
    "Workload",
    "WORKLOADS",
    "make_workload",
]

"""The NAS BTIO application kernel (paper §4.2, Tables 1–3).

BT solves a block-tridiagonal system on a cubic grid of ``N³`` points with
5 solution components per point, distributed over ``P = q²`` processes by
*diagonal multi-partitioning*: the grid is cut into ``q³`` cells of
``(N/q)³`` points and each process owns ``q`` cells, one per k-slab,
shifted diagonally so every slab is fully partitioned.

BTIO (the "full" MPI-IO version) appends the complete solution to a shared
file after each time step with a **single collective call**:

* the memtype of each cell is a subarray selecting the interior of the
  process' ghost-padded cell array,
* the filetype is the struct of the process' cell subarrays within the
  global grid,
* one ``MPI_File_write_at_all`` per step moves everything.

The I/O pattern characterization matches the paper exactly (Table 2):
``Nblock = q · (N/q)²`` contiguous blocks of ``Sblock = (N/q) · 40`` bytes
per process and step, ``Dstep = P · Nblock · Sblock = 5·8·N³`` bytes.

The BT *solver* is replaced by a calibrated synthetic compute phase (the
paper's own analysis treats ``t_no-io`` as an external baseline — only
``Δt_io`` between the two engines matters for Table 3); the decomposition,
datatypes and I/O are implemented for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import datatypes as dt
from repro.bench.timing import PhaseClock, PhaseTime
from repro.datatypes.base import Datatype
from repro.fs.filesystem import SimFileSystem
from repro.io import File, MODE_CREATE, MODE_RDWR
from repro.io.hints import Hints
from repro.mpi.runtime import Runtime
from repro.obs.phases import RoundLog

__all__ = [
    "BTIO_CLASSES",
    "BTIOConfig",
    "BTIOResult",
    "btio_characterize",
    "cell_coords",
    "build_cell_filetype",
    "build_cell_memtype",
    "run_btio",
]

#: Problem classes: grid edge length N (NPB 2.4 I/O version).
BTIO_CLASSES: Dict[str, int] = {
    "S": 12,
    "W": 24,
    "A": 64,
    "B": 102,
    "C": 162,
    "D": 408,
}

#: Solution components per grid point.
NCOMP = 5
#: Bytes per grid point (5 doubles).
POINT_BYTES = NCOMP * 8
#: Ghost-cell padding per side of a cell array in memory (BT uses a
#: 2-deep halo).
GHOST = 2


def _q_of(nprocs: int) -> int:
    q = int(round(nprocs ** 0.5))
    if q * q != nprocs:
        raise ValueError(
            f"BTIO requires a square number of processes, got {nprocs}"
        )
    return q


def cell_coords(rank: int, q: int) -> List[Tuple[int, int, int]]:
    """Cell coordinates (kcell, jcell, icell) owned by ``rank``.

    Diagonal multi-partitioning: cell ``c`` of process ``(i, j) = (rank %
    q, rank // q)`` sits at ``((i + c) % q, (j + c) % q)`` of k-slab
    ``c`` — each slab is partitioned by exactly the P processes.
    """
    i = rank % q
    j = rank // q
    return [((c), (j + c) % q, (i + c) % q) for c in range(q)]


def cell_splits(n: int, q: int) -> Tuple[List[int], List[int]]:
    """NPB-style uneven split of ``n`` grid points over ``q`` cells.

    Returns ``(sizes, starts)``; the first ``n % q`` cells are one point
    larger, so classes like B (102) run on P = 16 (q = 4).
    """
    base, rem = divmod(n, q)
    sizes = [base + (1 if c < rem else 0) for c in range(q)]
    starts = [sum(sizes[:c]) for c in range(q)]
    return sizes, starts


def build_cell_filetype(n: int, coords: Tuple[int, int, int],
                        q: int) -> Datatype:
    """Subarray filetype of one cell within the global ``n³`` grid.

    The file stores the solution as ``u[k][j][i][5]`` doubles (the
    linearization of the Fortran ``u(5, i, j, k)`` array), so the grid is
    a C-ordered ``[n, n, n]`` array of 5-double points.
    """
    point = dt.contiguous(NCOMP, dt.DOUBLE)
    sizes, starts = cell_splits(n, q)
    kc, jc, ic = coords
    return dt.subarray(
        sizes=[n, n, n],
        subsizes=[sizes[kc], sizes[jc], sizes[ic]],
        starts=[starts[kc], starts[jc], starts[ic]],
        base=point,
    )


def max_cell_size(n: int, q: int) -> int:
    """Largest cell edge length (memory arrays are uniformly padded to
    this, as NPB allocates them)."""
    return n // q + (1 if n % q else 0)


def build_cell_memtype(n: int, coords: Tuple[int, int, int],
                       q: int) -> Datatype:
    """Subarray memtype selecting this cell's interior from a uniformly
    ghost-padded cell array of edge ``max_cell_size + 2·GHOST``."""
    point = dt.contiguous(NCOMP, dt.DOUBLE)
    sizes, _ = cell_splits(n, q)
    kc, jc, ic = coords
    m = max_cell_size(n, q) + 2 * GHOST
    return dt.subarray(
        sizes=[m, m, m],
        subsizes=[sizes[kc], sizes[jc], sizes[ic]],
        starts=[GHOST, GHOST, GHOST],
        base=point,
    )


def build_process_filetype(n: int, nprocs: int, rank: int) -> Datatype:
    """Struct of the rank's cell subarrays — the BTIO fileview."""
    q = _q_of(nprocs)
    cells = [build_cell_filetype(n, c, q) for c in cell_coords(rank, q)]
    if len(cells) == 1:
        return cells[0]
    return dt.struct([1] * len(cells), [0] * len(cells), cells)


def build_process_memtype(n: int, nprocs: int, rank: int) -> Datatype:
    """Struct of the rank's cell interiors over one packed buffer holding
    the ``q`` ghost-padded cell arrays back to back."""
    q = _q_of(nprocs)
    coords = cell_coords(rank, q)
    cells = [build_cell_memtype(n, c, q) for c in coords]
    cell_bytes = (max_cell_size(n, q) + 2 * GHOST) ** 3 * POINT_BYTES
    if q == 1:
        return cells[0]
    t = dt.struct(
        [1] * q, [c * cell_bytes for c in range(q)], cells
    )
    return dt.resized(t, 0, q * cell_bytes)


# ----------------------------------------------------------------------
# Characterization (Tables 1 and 2)
# ----------------------------------------------------------------------
def btio_characterize(cls: str, nprocs: int, nsteps: int = 40) -> Dict:
    """Analytic I/O characterization of a BTIO run (paper Tables 1–2).

    ``nblock`` and ``sblock`` are the nominal per-process values the paper
    tabulates (``N²/q`` blocks of ``N/q`` points — exact when ``q | N``,
    rounded otherwise since NPB's uneven split makes them vary by ±1
    point across cells); ``dstep``/``drun`` are exact (``40·N³`` bytes
    per step).
    """
    n = BTIO_CLASSES[cls]
    q = _q_of(nprocs)
    nblock = n * n // q  # truncated, as the paper tabulates
    sblock = n * POINT_BYTES // q
    dstep = n ** 3 * POINT_BYTES
    return {
        "class": cls,
        "grid": n,
        "nprocs": nprocs,
        "ncells": q,
        "cell_size": n / q,
        "nblock": nblock,
        "sblock": sblock,
        "dstep": dstep,
        "drun": nsteps * dstep,
        "nsteps": nsteps,
    }


def btio_exact_pattern(cls: str, nprocs: int, rank: int) -> Dict:
    """Exact per-rank block statistics from the real decomposition."""
    n = BTIO_CLASSES[cls]
    q = _q_of(nprocs)
    sizes, _ = cell_splits(n, q)
    nblock = 0
    data_bytes = 0
    for kc, jc, ic in cell_coords(rank, q):
        nblock += sizes[kc] * sizes[jc]
        data_bytes += sizes[kc] * sizes[jc] * sizes[ic] * POINT_BYTES
    return {
        "nblock": nblock,
        "data_bytes": data_bytes,
        "mean_sblock": data_bytes / nblock,
    }


# ----------------------------------------------------------------------
# Timed runs (Table 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BTIOConfig:
    """One BTIO run configuration.

    ``nsteps`` defaults far below the paper's 40 so that laptop-scale
    runs stay fast; ``compute_sweeps`` controls the synthetic solver
    stand-in (vectorized stencil sweeps per step, 0 disables).
    """

    cls: str = "S"
    nprocs: int = 4
    nsteps: int = 5
    compute_sweeps: int = 2
    hints: Optional[Hints] = None
    verify: bool = False

    @property
    def grid(self) -> int:
        return BTIO_CLASSES[self.cls]


@dataclass
class BTIOResult:
    """Timings of one BTIO run."""

    config: BTIOConfig
    engine: str
    io_time: PhaseTime = None  # type: ignore[assignment]
    compute_time: PhaseTime = None  # type: ignore[assignment]
    comm_bytes: int = 0
    fs_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-phase wall time (``phase_<bucket>`` keys, seconds) summed over
    #: ranks — the Table-3-style overhead decomposition of the run.
    phases: Dict[str, float] = field(default_factory=dict)
    #: The same snapshots, one per rank (index == rank).
    phases_by_rank: List[Dict[str, float]] = field(default_factory=list)
    #: Per-round exchange/file_io decomposition of the run's collective
    #: accesses, merged across ranks by round index (seconds summed,
    #: see :meth:`repro.obs.phases.RoundLog.merge_by_index`).
    rounds: List[Dict[str, float]] = field(default_factory=list)
    #: The unmerged per-rank round logs (index == rank).
    rounds_by_rank: List[List[Dict[str, float]]] = field(
        default_factory=list
    )

    @property
    def drun(self) -> int:
        c = btio_characterize(
            self.config.cls, self.config.nprocs, self.config.nsteps
        )
        return c["drun"]

    @property
    def io_bandwidth(self) -> float:
        """Effective I/O bandwidth over the run (bytes/s)."""
        return self.io_time.bandwidth(self.drun)


def _compute_standin(cells: List[np.ndarray], sweeps: int) -> None:
    """Calibrated stand-in for one BT time step: vectorized Jacobi-style
    relaxation sweeps over each cell's interior (k-direction halo)."""
    for _ in range(sweeps):
        for u in cells:
            interior = u[GHOST:-GHOST, GHOST:-GHOST, GHOST:-GHOST, :]
            lo = u[GHOST - 1 : -GHOST - 1, GHOST:-GHOST, GHOST:-GHOST, :]
            hi = u[GHOST + 1 : (-GHOST + 1) or None,
                   GHOST:-GHOST, GHOST:-GHOST, :]
            interior *= 0.9
            interior += 0.05 * (lo + hi)
            interior += 1e-9


def run_btio(
    engine: str,
    config: BTIOConfig,
    fs: Optional[SimFileSystem] = None,
    runtime: "str | Runtime | None" = None,
) -> BTIOResult:
    """Run the BTIO kernel with the given engine.

    Per step: the compute stand-in, then one collective ``write_at_all``
    of the full solution through the subarray fileview.  I/O time and
    compute time are accumulated separately (the paper reports
    ``Δt_io = t_btio − t_no-io``; here we time the I/O directly).

    ``runtime`` selects the execution backend (``"sim"``/``"proc"`` or a
    ready :class:`~repro.mpi.runtime.Runtime`; ``None`` honours
    ``REPRO_RUNTIME``).  The proc backend defaults ``fs`` to an
    :class:`~repro.fs.filesystem.OsFileSystem` over a temporary
    directory — each rank process accesses the output file through its
    own descriptor, so the measured wall time includes real device and
    lock contention and the simulated components are zero.
    """
    rt = Runtime.resolve(runtime)
    cleanup_dir = None
    if fs is None:
        if rt.backend == "sim":
            fs = SimFileSystem()
        else:
            import tempfile

            from repro.fs.filesystem import OsFileSystem

            cleanup_dir = tempfile.mkdtemp(prefix="btio-")
            fs = OsFileSystem(cleanup_dir)
    try:
        return _run_btio(engine, config, fs, rt)
    finally:
        if cleanup_dir is not None:
            import shutil

            fs.close()
            shutil.rmtree(cleanup_dir, ignore_errors=True)


def _run_btio(engine: str, config: BTIOConfig, fs, rt: "Runtime",
              ) -> BTIOResult:
    cfg = config
    n = cfg.grid
    P = cfg.nprocs
    q = _q_of(P)
    worlds: list = []
    result = BTIOResult(config=cfg, engine=engine)
    step_doubles = n * n * n * NCOMP
    sizes, _starts = cell_splits(n, q)
    m = max_cell_size(n, q) + 2 * GHOST

    def cell_interior(u: np.ndarray, coords: Tuple[int, int, int]):
        kc, jc, ic = coords
        return u[
            GHOST : GHOST + sizes[kc],
            GHOST : GHOST + sizes[jc],
            GHOST : GHOST + sizes[ic],
            :,
        ]

    def worker(comm) -> Dict:
        rank = comm.rank
        coords = cell_coords(rank, q)
        ftype = build_process_filetype(n, P, rank)
        mtype = build_process_memtype(n, P, rank)
        cells = [
            np.zeros((m, m, m, NCOMP), dtype=np.float64) for _ in range(q)
        ]
        for c, u in enumerate(cells):
            cell_interior(u, coords[c])[...] = rank * 1000.0 + c
        membuf = (
            np.concatenate([u.reshape(-1) for u in cells])
            if q > 1
            else cells[0].reshape(-1)
        )
        cell_views = [
            membuf[i * m ** 3 * NCOMP : (i + 1) * m ** 3 * NCOMP].reshape(
                m, m, m, NCOMP
            )
            for i in range(q)
        ]

        fh = File.open(
            comm, fs, "/btio.out", MODE_CREATE | MODE_RDWR,
            engine=engine, hints=cfg.hints,
        )
        fh.set_view(0, dt.DOUBLE, ftype)

        # Rank 0 times the barrier-bracketed phases.  ``worlds`` is only
        # populated inside the sim backend (the proc world report is
        # parent-side, assembled after the ranks exit); the clock's
        # simulated components are zero without it, as they should be —
        # on the proc backend the real device and wire are inside wall.
        io_clock = compute_clock = None
        io_acc = [0.0, 0.0, 0.0]
        comp_acc = [0.0, 0.0, 0.0]
        comm.barrier()
        if rank == 0:
            world = worlds[0] if worlds else None
            io_clock = PhaseClock(fs, world)
            compute_clock = PhaseClock(fs, world)
        comm.barrier()

        for step in range(cfg.nsteps):
            if rank == 0:
                compute_clock.start()
            _compute_standin(cell_views, cfg.compute_sweeps)
            comm.barrier()
            if rank == 0:
                t = compute_clock.stop()
                comp_acc[0] += t.wall
                comp_acc[1] += t.fs_sim
                comp_acc[2] += t.net_sim
                io_clock.start()
            comm.barrier()
            fh.write_at_all(step * step_doubles, membuf, 1, mtype)
            comm.barrier()
            if rank == 0:
                t = io_clock.stop()
                io_acc[0] += t.wall
                io_acc[1] += t.fs_sim
                io_acc[2] += t.net_sim
            comm.barrier()

        if cfg.verify:
            out = np.zeros_like(membuf)
            fh.read_at_all(
                (cfg.nsteps - 1) * step_doubles, out, 1, mtype
            )
            ok = True
            for c in range(q):
                v = out[c * m ** 3 * NCOMP : (c + 1) * m ** 3 * NCOMP].reshape(
                    m, m, m, NCOMP
                )
                got = cell_interior(v, coords[c])
                want = cell_interior(cell_views[c], coords[c])
                ok = ok and np.allclose(got, want)
            assert ok, f"rank {rank}: BTIO verification failed"
        ret = {
            "phases": fh.engine.stats.phases.snapshot(),
            "rounds": fh.engine.stats.rounds.snapshot(),
            "fs_stats": fs.lookup("/btio.out").stats.snapshot(),
            "io_acc": io_acc if rank == 0 else None,
            "comp_acc": comp_acc if rank == 0 else None,
        }
        fh.close()
        return ret

    rows = rt.run(P, worker, world_out=worlds)
    result.io_time = PhaseTime(*rows[0]["io_acc"])
    result.compute_time = PhaseTime(*rows[0]["comp_acc"])
    result.comm_bytes = worlds[0].total_bytes_sent()
    if rt.backend == "sim":
        # One shared file object: its stats already aggregate every rank.
        result.fs_stats = fs.lookup("/btio.out").stats.snapshot()
    else:
        # Per-process descriptors count independently: sum the rows.
        merged: Dict[str, float] = {}
        for row in rows:
            for k, v in row["fs_stats"].items():
                merged[k] = merged.get(k, 0) + v
        result.fs_stats = merged
    result.phases_by_rank = [row["phases"] for row in rows]
    result.phases = {
        k: sum(row[k] for row in result.phases_by_rank)
        for k in (result.phases_by_rank[0] if result.phases_by_rank else {})
    }
    result.rounds_by_rank = [row.get("rounds", []) for row in rows]
    result.rounds = RoundLog.merge_by_index(result.rounds_by_rank)
    return result
